//! The functional machine.

use std::error::Error;
use std::fmt;

use std::sync::Arc;

use svf_isa::{Inst, MemOp, Operand, Program, Reg, SysFunc, STACK_BASE, TEXT_BASE};

use crate::memory::Memory;
use crate::retired::{ControlFlow, MemAccess, Retired, SpUpdate};

/// Errors the functional machine can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// The PC left the text segment.
    BadPc(u64),
    /// An instruction word failed to decode.
    BadInst {
        /// PC of the undecodable word.
        pc: u64,
        /// Decoder diagnostic.
        msg: String,
    },
    /// A load/store was not naturally aligned.
    Misaligned {
        /// PC of the faulting access.
        pc: u64,
        /// Faulting address.
        addr: u64,
        /// Access size.
        size: u8,
    },
    /// `step` was called on a halted machine.
    Halted,
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::BadPc(pc) => write!(f, "PC {pc:#x} outside text segment"),
            EmuError::BadInst { pc, msg } => write!(f, "bad instruction at {pc:#x}: {msg}"),
            EmuError::Misaligned { pc, addr, size } => {
                write!(f, "misaligned {size}-byte access to {addr:#x} at PC {pc:#x}")
            }
            EmuError::Halted => write!(f, "machine is halted"),
        }
    }
}

impl Error for EmuError {}

/// Why [`Emulator::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The program executed a `halt`.
    Halted,
    /// The step budget was exhausted first.
    StepLimit,
}

/// The functional emulator. See the [crate docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct Emulator {
    regs: [u64; 32],
    pc: u64,
    mem: Memory,
    decoded: Arc<[Inst]>,
    heap_base: u64,
    output: Vec<u8>,
    halted: bool,
    steps: u64,
}

/// A point-in-time snapshot of the full architectural state of an
/// [`Emulator`]: registers, PC, resident memory pages, syscall output,
/// halt flag, and the retired-instruction count.
///
/// The decoded text image is *not* part of the snapshot — it is immutable
/// and shared by reference count, so [`Emulator::restore`] keeps whatever
/// image the target machine already holds. Restoring a checkpoint into an
/// emulator built from a different program is therefore a logic error
/// (guarded by a debug assertion on the image identity).
///
/// Snapshot cost is dominated by cloning resident memory pages (4 KiB
/// each); the benchmarks' working sets are tens of pages, so a checkpoint
/// is microseconds, cheap enough to take once per sampled interval.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    regs: [u64; 32],
    pc: u64,
    mem: Memory,
    output: Vec<u8>,
    halted: bool,
    steps: u64,
    /// Identity of the decoded image the snapshot was taken under, for the
    /// cross-program debug assertion in [`Emulator::restore`].
    image: Arc<[Inst]>,
}

impl Checkpoint {
    /// Retired-instruction count at the moment the snapshot was taken.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

impl Emulator {
    /// Loads a program: the shared [`Program::decoded`] image is taken by
    /// reference count (no per-emulator re-decode), data copied in, `$sp`
    /// set to [`STACK_BASE`], and the PC set to the entry point.
    ///
    /// # Panics
    ///
    /// Panics if the program contains an undecodable instruction word
    /// (assembled programs never do).
    #[must_use]
    pub fn new(program: &Program) -> Emulator {
        let decoded = program.decoded();
        let mut mem = Memory::new();
        mem.load(program.data_base(), &program.data);
        let mut regs = [0u64; 32];
        regs[Reg::SP.number() as usize] = STACK_BASE;
        Emulator {
            regs,
            pc: program.entry,
            mem,
            decoded,
            heap_base: program.heap_base,
            output: Vec::new(),
            halted: false,
            steps: 0,
        }
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Reads an architectural register.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.number() as usize]
    }

    /// Writes an architectural register (writes to `$zero` are discarded).
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.number() as usize] = v;
        }
    }

    /// The functional memory (e.g. for loading inputs in tests).
    #[must_use]
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to the functional memory.
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Heap base captured from the program image (for region classification).
    #[must_use]
    pub fn heap_base(&self) -> u64 {
        self.heap_base
    }

    /// Whether the machine has executed `halt`.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions committed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Bytes written through `putint`/`putchar`.
    #[must_use]
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// The output as (lossy) UTF-8.
    #[must_use]
    pub fn output_string(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }

    /// Executes one instruction and reports what committed.
    ///
    /// # Errors
    ///
    /// Returns an [`EmuError`] on bad PCs, misaligned accesses, or when the
    /// machine is already halted.
    pub fn step(&mut self) -> Result<Retired, EmuError> {
        let mut out = Retired::PLACEHOLDER;
        self.step_record(&mut out)?;
        Ok(out)
    }

    /// Executes one instruction, writing the committed record into `out`
    /// in place. This is [`Emulator::step`] without the by-value return of
    /// the wide record — the cycle simulator calls it once per instruction,
    /// targeting its fetch-queue ring slot directly.
    ///
    /// # Errors
    ///
    /// Returns an [`EmuError`] on bad PCs, misaligned accesses, or when the
    /// machine is already halted; `out` is untouched on error.
    #[inline]
    pub fn step_record(&mut self, out: &mut Retired) -> Result<(), EmuError> {
        self.step_impl::<true>(out)
    }

    /// The fetch-decode-execute core, monomorphized over whether a
    /// [`Retired`] record is materialized. Functional-only callers
    /// ([`Emulator::run`]) use `RECORD = false` and skip assembling the
    /// per-instruction record entirely (`out` is scratch); the
    /// architectural effects are identical either way.
    #[allow(clippy::too_many_lines)]
    fn step_impl<const RECORD: bool>(&mut self, out: &mut Retired) -> Result<(), EmuError> {
        if self.halted {
            return Err(EmuError::Halted);
        }
        let pc = self.pc;
        if pc < TEXT_BASE || !pc.is_multiple_of(4) {
            return Err(EmuError::BadPc(pc));
        }
        let idx = ((pc - TEXT_BASE) / 4) as usize;
        let inst = *self.decoded.get(idx).ok_or(EmuError::BadPc(pc))?;

        let sp_before = self.reg(Reg::SP);
        let mut next_pc = pc + 4;
        let mut mem_access = None;
        let mut control = None;

        match inst {
            Inst::Sys { func } => match func {
                SysFunc::Halt => self.halted = true,
                SysFunc::PutInt => {
                    let v = self.reg(Reg::A0) as i64;
                    self.output.extend_from_slice(v.to_string().as_bytes());
                    self.output.push(b'\n');
                }
                SysFunc::PutChar => {
                    self.output.push(self.reg(Reg::A0) as u8);
                }
            },
            Inst::Mem { op, ra, rb, disp } => {
                let addr = self.reg(rb).wrapping_add(disp as u64);
                let size = op.size() as u8;
                if !addr.is_multiple_of(u64::from(size)) {
                    return Err(EmuError::Misaligned { pc, addr, size });
                }
                match op {
                    MemOp::Ldq => {
                        let v = self.mem.read_u64(addr);
                        self.set_reg(ra, v);
                    }
                    MemOp::Ldl => {
                        let v = self.mem.read_u32(addr) as i32 as i64 as u64;
                        self.set_reg(ra, v);
                    }
                    MemOp::Ldbu => {
                        let v = u64::from(self.mem.read_u8(addr));
                        self.set_reg(ra, v);
                    }
                    MemOp::Stq => self.mem.write_u64(addr, self.reg(ra)),
                    MemOp::Stl => self.mem.write_u32(addr, self.reg(ra) as u32),
                    MemOp::Stb => self.mem.write_u8(addr, self.reg(ra) as u8),
                }
                if RECORD {
                    mem_access =
                        Some(MemAccess { addr, size, is_store: op.is_store(), base: rb });
                }
            }
            Inst::Lda { high, ra, rb, disp } => {
                let d = if high { i64::from(disp) << 16 } else { i64::from(disp) };
                let v = self.reg(rb).wrapping_add(d as u64);
                self.set_reg(ra, v);
            }
            Inst::Br { ra, disp, .. } => {
                self.set_reg(ra, pc + 4);
                let target = (pc + 4).wrapping_add((i64::from(disp) * 4) as u64);
                next_pc = target;
                if RECORD {
                    control = Some(ControlFlow { taken: true, target });
                }
            }
            Inst::CondBr { op, ra, disp } => {
                let taken = op.taken(self.reg(ra));
                let target = (pc + 4).wrapping_add((i64::from(disp) * 4) as u64);
                if taken {
                    next_pc = target;
                }
                if RECORD {
                    control = Some(ControlFlow { taken, target: next_pc });
                }
            }
            Inst::Op { op, ra, rb, rc } => {
                let a = self.reg(ra);
                let b = match rb {
                    Operand::Reg(r) => self.reg(r),
                    Operand::Lit(l) => u64::from(l),
                };
                self.set_reg(rc, op.apply(a, b));
            }
            Inst::Jmp { ra, rb, .. } => {
                let target = self.reg(rb) & !3;
                self.set_reg(ra, pc + 4);
                next_pc = target;
                if RECORD {
                    control = Some(ControlFlow { taken: true, target });
                }
            }
        }

        self.pc = next_pc;
        self.steps += 1;
        if RECORD {
            let sp_after = self.reg(Reg::SP);
            let sp_update = (sp_after != sp_before || inst.writes_sp()).then(|| SpUpdate {
                old_sp: sp_before,
                new_sp: sp_after,
                immediate: inst.sp_immediate_adjust().is_some(),
            });
            *out = Retired { pc, inst, next_pc, mem: mem_access, control, sp_update, sp_before };
        }
        Ok(())
    }

    /// Snapshots the full architectural state (see [`Checkpoint`]).
    #[must_use]
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            regs: self.regs,
            pc: self.pc,
            mem: self.mem.clone(),
            output: self.output.clone(),
            halted: self.halted,
            steps: self.steps,
            image: Arc::clone(&self.decoded),
        }
    }

    /// Restores a [`Checkpoint`], making this machine architecturally
    /// identical to the one the snapshot was taken from. The decoded text
    /// image is untouched (it is immutable and must match).
    ///
    /// # Panics
    ///
    /// Debug-asserts that the checkpoint was taken under the same decoded
    /// image this machine runs.
    pub fn restore(&mut self, ck: &Checkpoint) {
        debug_assert!(
            Arc::ptr_eq(&self.decoded, &ck.image),
            "checkpoint restored into an emulator running a different program"
        );
        self.regs = ck.regs;
        self.pc = ck.pc;
        self.mem.clone_from(&ck.mem);
        self.output.clone_from(&ck.output);
        self.halted = ck.halted;
        self.steps = ck.steps;
    }

    /// Runs until `halt` or until `max_steps` more instructions have
    /// committed.
    ///
    /// # Errors
    ///
    /// Propagates any [`EmuError`] from [`Emulator::step`].
    pub fn run(&mut self, max_steps: u64) -> Result<RunOutcome, EmuError> {
        let mut scratch = Retired::PLACEHOLDER;
        for _ in 0..max_steps {
            if self.halted {
                return Ok(RunOutcome::Halted);
            }
            self.step_impl::<false>(&mut scratch)?;
        }
        Ok(if self.halted { RunOutcome::Halted } else { RunOutcome::StepLimit })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svf_asm::assemble;

    fn run_asm(src: &str) -> Emulator {
        let p = assemble(src).expect("assembles");
        let mut emu = Emulator::new(&p);
        let outcome = emu.run(1_000_000).expect("runs");
        assert_eq!(outcome, RunOutcome::Halted, "program did not halt");
        emu
    }

    #[test]
    fn arithmetic_and_output() {
        let emu = run_asm(
            "main:
                li $a0, 40
                addq $a0, 2, $a0
                putint
                halt",
        );
        assert_eq!(emu.output_string(), "42\n");
    }

    #[test]
    fn loop_with_branch() {
        let emu = run_asm(
            "main:
                li $t0, 10
                li $a0, 0
            .loop:
                addq $a0, $t0, $a0
                subq $t0, 1, $t0
                bne $t0, .loop
                putint
                halt",
        );
        assert_eq!(emu.output_string(), "55\n");
    }

    #[test]
    fn stack_push_pop() {
        let emu = run_asm(
            "main:
                lda $sp, -16($sp)
                li $t0, 123
                stq $t0, 8($sp)
                ldq $a0, 8($sp)
                lda $sp, 16($sp)
                putint
                halt",
        );
        assert_eq!(emu.output_string(), "123\n");
        assert_eq!(emu.reg(Reg::SP), STACK_BASE);
    }

    #[test]
    fn call_and_return() {
        let emu = run_asm(
            "main:
                li $a0, 20
                call double
                putint
                halt
            double:
                addq $a0, $a0, $a0
                ret",
        );
        assert_eq!(emu.output_string(), "40\n");
    }

    #[test]
    fn recursion_factorial() {
        let emu = run_asm(
            "main:
                li $a0, 10
                call fact
                mov $v0, $a0
                putint
                halt
            fact:
                lda $sp, -16($sp)
                stq $ra, 0($sp)
                stq $a0, 8($sp)
                ble $a0, .base
                subq $a0, 1, $a0
                call fact
                ldq $a0, 8($sp)
                mulq $v0, $a0, $v0
                br .out
            .base:
                li $v0, 1
            .out:
                ldq $ra, 0($sp)
                lda $sp, 16($sp)
                ret",
        );
        assert_eq!(emu.output_string(), "3628800\n");
    }

    #[test]
    fn data_segment_access() {
        let emu = run_asm(
            "main:
                la $t0, vals
                ldq $a0, 0($t0)
                ldq $t1, 8($t0)
                addq $a0, $t1, $a0
                putint
                halt
            .data
            vals: .quad 100, -58",
        );
        assert_eq!(emu.output_string(), "42\n");
    }

    #[test]
    fn sub_word_memory_ops() {
        let emu = run_asm(
            "main:
                la $t0, buf
                li $t1, 0x1FF
                stl $t1, 0($t0)
                stb $t1, 4($t0)
                ldl $a0, 0($t0)
                ldbu $t2, 4($t0)
                addq $a0, $t2, $a0
                putint
                halt
            .data
            buf: .space 8",
        );
        assert_eq!(emu.output_string(), format!("{}\n", 0x1FF + 0xFF));
    }

    #[test]
    fn ldl_sign_extends() {
        let emu = run_asm(
            "main:
                la $t0, buf
                li $t1, -1
                stl $t1, 0($t0)
                ldl $a0, 0($t0)
                putint
                halt
            .data
            buf: .space 8",
        );
        assert_eq!(emu.output_string(), "-1\n");
    }

    #[test]
    fn retired_records_classify_stack_refs() {
        let p = assemble(
            "main:
                lda $sp, -16($sp)
                stq $zero, 0($sp)
                ldq $t0, 0($sp)
                halt",
        )
        .unwrap();
        let mut emu = Emulator::new(&p);
        let r1 = emu.step().unwrap(); // lda $sp
        assert!(r1.sp_update.unwrap().immediate);
        assert_eq!(r1.sp_update.unwrap().new_sp, STACK_BASE - 16);
        let r2 = emu.step().unwrap(); // stq
        let m = r2.mem.unwrap();
        assert!(m.is_store);
        assert!(r2.is_stack_ref(emu.heap_base()));
        assert_eq!(m.method(), crate::AccessMethod::Sp);
        let r3 = emu.step().unwrap(); // ldq
        assert!(!r3.mem.unwrap().is_store);
    }

    #[test]
    fn misaligned_access_faults() {
        let p = assemble(
            "main:
                li $t0, 0x1001
                ldq $a0, 0($t0)
                halt",
        )
        .unwrap();
        let mut emu = Emulator::new(&p);
        emu.step().unwrap();
        let err = loop {
            if let Err(e) = emu.step() { break e }
        };
        assert!(matches!(err, EmuError::Misaligned { .. }));
    }

    #[test]
    fn step_after_halt_errors() {
        let mut emu = Emulator::new(&assemble("main: halt").unwrap());
        emu.step().unwrap();
        assert!(emu.is_halted());
        assert_eq!(emu.step(), Err(EmuError::Halted));
    }

    #[test]
    fn run_respects_step_limit() {
        let mut emu = Emulator::new(
            &assemble(
                "main:
                .loop: br .loop",
            )
            .unwrap(),
        );
        assert_eq!(emu.run(100).unwrap(), RunOutcome::StepLimit);
        assert_eq!(emu.steps(), 100);
    }

    #[test]
    fn checkpoint_restore_replays_identically() {
        let p = assemble(
            "main:
                li $t0, 10
                li $a0, 0
            .loop:
                addq $a0, $t0, $a0
                stq $a0, -8($sp)
                subq $t0, 1, $t0
                bne $t0, .loop
                ldq $a0, -8($sp)
                putint
                halt",
        )
        .unwrap();
        let mut emu = Emulator::new(&p);
        emu.run(7).unwrap();
        let ck = emu.checkpoint();
        assert_eq!(ck.steps(), 7);

        // Reference: record the rest of the run from the checkpoint.
        let reference: Vec<Retired> = std::iter::from_fn(|| {
            (!emu.is_halted()).then(|| emu.step().expect("steps"))
        })
        .collect();
        let reference_out = emu.output_string();

        // Diverge a second machine well past the snapshot, then restore.
        let mut other = Emulator::new(&p);
        other.run(20).unwrap();
        other.restore(&ck);
        assert_eq!(other.steps(), 7);
        let replay: Vec<Retired> = std::iter::from_fn(|| {
            (!other.is_halted()).then(|| other.step().expect("steps"))
        })
        .collect();
        assert_eq!(replay, reference, "restored stream diverged");
        assert_eq!(other.output_string(), reference_out);
        assert_eq!(other.output_string(), "55\n");
    }

    #[test]
    fn checkpoint_of_halted_machine_stays_halted() {
        let p = assemble("main: halt").unwrap();
        let mut emu = Emulator::new(&p);
        emu.step().unwrap();
        let ck = emu.checkpoint();
        let mut target = Emulator::new(&p);
        target.restore(&ck);
        assert!(target.is_halted());
        assert_eq!(target.step(), Err(EmuError::Halted));
    }

    #[test]
    fn putchar_bytes() {
        let emu = run_asm(
            "main:
                li $a0, 'H'
                putchar
                li $a0, 'i'
                putchar
                halt",
        );
        assert_eq!(emu.output_string(), "Hi");
    }
}
