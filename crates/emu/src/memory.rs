//! Sparse functional memory.

use std::cell::Cell;
use std::collections::HashMap;

const PAGE_BITS: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// Direct-mapped translation-cache entries (page number → arena slot).
/// Working sets here are a handful of stack/data/text pages, so a small
/// power-of-two cache all but eliminates `HashMap` probes on the
/// load/store path.
const TLB_WAYS: usize = 64;

/// Tag of an empty TLB way. Page numbers are addresses shifted right by
/// [`PAGE_BITS`], so `u64::MAX` can never be a real tag.
const NO_PAGE: u64 = u64::MAX;

/// A sparse, byte-addressable 64-bit memory backed by 4 KiB pages.
///
/// Pages live in an arena (`Vec` of boxed pages); a `HashMap` maps page
/// numbers to arena slots, with a small direct-mapped translation cache in
/// front of it. The cache uses interior mutability so that plain `&self`
/// reads keep it warm too.
///
/// Reads of never-written locations return zero, matching the zero-filled
/// BSS/stack the OS would provide.
///
/// # Example
///
/// ```
/// let mut m = svf_emu::Memory::new();
/// m.write_u64(0x4000_0000 - 8, 0xDEAD_BEEF);
/// assert_eq!(m.read_u64(0x4000_0000 - 8), 0xDEAD_BEEF);
/// assert_eq!(m.read_u64(0x1234_5678), 0, "untouched memory reads zero");
/// ```
#[derive(Debug, Clone)]
pub struct Memory {
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
    index: HashMap<u64, u32>,
    tlb: [Cell<(u64, u32)>; TLB_WAYS],
}

impl Default for Memory {
    fn default() -> Memory {
        Memory {
            pages: Vec::new(),
            index: HashMap::new(),
            tlb: std::array::from_fn(|_| Cell::new((NO_PAGE, 0))),
        }
    }
}

impl Memory {
    /// Creates an empty memory.
    #[must_use]
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of pages that have been materialized.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Arena slot of `page_no`, if the page is resident.
    #[inline]
    fn lookup(&self, page_no: u64) -> Option<u32> {
        let way = &self.tlb[(page_no as usize) & (TLB_WAYS - 1)];
        let (tag, slot) = way.get();
        if tag == page_no {
            return Some(slot);
        }
        let slot = *self.index.get(&page_no)?;
        way.set((page_no, slot));
        Some(slot)
    }

    #[inline]
    fn page(&self, addr: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.lookup(addr >> PAGE_BITS).map(|slot| &*self.pages[slot as usize])
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        let page_no = addr >> PAGE_BITS;
        let slot = match self.lookup(page_no) {
            Some(slot) => slot,
            None => {
                let slot = u32::try_from(self.pages.len()).expect("fewer than 2^32 pages");
                self.pages.push(Box::new([0u8; PAGE_SIZE]));
                self.index.insert(page_no, slot);
                self.tlb[(page_no as usize) & (TLB_WAYS - 1)].set((page_no, slot));
                slot
            }
        };
        &mut self.pages[slot as usize]
    }

    /// Reads one byte.
    #[must_use]
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.page(addr).map_or(0, |p| p[(addr as usize) & (PAGE_SIZE - 1)])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.page_mut(addr)[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads `N` little-endian bytes starting at `addr` (may cross pages).
    fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + N <= PAGE_SIZE {
            if let Some(p) = self.page(addr) {
                let mut out = [0u8; N];
                out.copy_from_slice(&p[off..off + N]);
                return out;
            }
            return [0u8; N];
        }
        let mut out = [0u8; N];
        for (i, b) in out.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
        out
    }

    fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + bytes.len() <= PAGE_SIZE {
            self.page_mut(addr)[off..off + bytes.len()].copy_from_slice(bytes);
        } else {
            for (i, &b) in bytes.iter().enumerate() {
                self.write_u8(addr + i as u64, b);
            }
        }
    }

    /// Reads a little-endian 32-bit value.
    #[must_use]
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes::<4>(addr))
    }

    /// Writes a little-endian 32-bit value.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian 64-bit value.
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes::<8>(addr))
    }

    /// Writes a little-endian 64-bit value.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Bulk-loads a byte slice (used by the program loader).
    pub fn load(&mut self, base: u64, bytes: &[u8]) {
        self.write_bytes(base, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u64(0xFFFF_FFFF_FFFF_0000), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn read_write_widths() {
        let mut m = Memory::new();
        m.write_u64(0x100, 0x0102_0304_0506_0708);
        assert_eq!(m.read_u64(0x100), 0x0102_0304_0506_0708);
        assert_eq!(m.read_u32(0x100), 0x0506_0708);
        assert_eq!(m.read_u32(0x104), 0x0102_0304);
        assert_eq!(m.read_u8(0x100), 0x08, "little-endian");
        m.write_u8(0x100, 0xFF);
        assert_eq!(m.read_u64(0x100), 0x0102_0304_0506_07FF);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE as u64 - 3; // straddles page 0 and 1
        m.write_u64(addr, 0xAABB_CCDD_EEFF_1122);
        assert_eq!(m.read_u64(addr), 0xAABB_CCDD_EEFF_1122);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn bulk_load() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..=255).collect();
        m.load(0x2000 - 128, &data);
        for (i, &b) in data.iter().enumerate() {
            assert_eq!(m.read_u8(0x2000 - 128 + i as u64), b);
        }
    }

    #[test]
    fn tlb_conflicting_pages_stay_coherent() {
        let mut m = Memory::new();
        // Two page numbers that map to the same direct-mapped way
        // (differ by exactly TLB_WAYS pages), plus an unrelated page.
        let a = 0x10_0000;
        let b = a + (TLB_WAYS as u64) * PAGE_SIZE as u64;
        m.write_u64(a, 1);
        m.write_u64(b, 2);
        for _ in 0..4 {
            assert_eq!(m.read_u64(a), 1);
            assert_eq!(m.read_u64(b), 2);
        }
        m.write_u64(a, 3);
        assert_eq!(m.read_u64(b), 2);
        assert_eq!(m.read_u64(a), 3);
        assert_eq!(m.resident_pages(), 2);
    }
}
