//! Compact binary traces of committed instructions (`RetiredTrace` format).
//!
//! A [`TraceWriter`] serializes [`Retired`] records into a small
//! variable-length format (~4–12 bytes per instruction for typical code),
//! and a [`TraceReader`] replays them. Traces let expensive functional runs
//! be captured once and re-analyzed (characterization, traffic simulation,
//! lockstep timing sweeps via [`crate::TraceSource`]) without re-executing,
//! and serve as an interchange format with other tools.
//!
//! # Format (version 2)
//!
//! A header followed by one variable-length record per instruction. The
//! reader works over any `impl Read`; because records are self-delimiting
//! and decoded purely forward, a memory-mapped file (or any `&[u8]`) reads
//! with zero copies.
//!
//! ```text
//! magic:      u32le   0x53564654 ("SVFT")
//! version:    u16le   2
//! reserved:   u16le   must be written as zero
//! entry:      varint  program entry PC
//! heap_base:  varint  heap base (for region classification)
//! initial_sp: varint  $sp at the first record (timing models need it to
//!                     size the SVF window before any sp_update arrives)
//! ```
//!
//! Each record:
//!
//! ```text
//! flags: u8      bit0 mem, bit1 control, bit2 sp_update, bit3 taken,
//!                bit4 store, bit5 sp-immediate
//! pc:    varint  delta-encoded against prev_pc + 4 (zigzag)
//! word:  u32     raw instruction encoding
//! [addr: varint  delta vs sp_before (zigzag), size: u8, base: u8]  if mem
//! [target: varint delta vs pc + 4 (zigzag)]                        if control
//! [new_sp: varint delta vs old_sp (zigzag)]                        if sp_update
//! sp_before: varint delta vs prev record's sp_before (zigzag)
//! ```
//!
//! Version 1 lacked the `initial_sp` header field; v1 files are rejected
//! with [`TraceError::UnsupportedVersion`] (recapture them).

use std::fmt;
use std::io::{self, Read, Write};

use svf_isa::{decode, encode, Reg};

use crate::retired::{ControlFlow, MemAccess, Retired, SpUpdate};

const MAGIC: u32 = 0x53_56_46_54; // "SVFT"
const VERSION: u16 = 2;

/// Why a trace could not be read. Corrupt and truncated inputs are ordinary
/// errors, never panics, so callers can treat trace files as untrusted.
#[derive(Debug)]
pub enum TraceError {
    /// The underlying reader failed (not EOF — short reads inside the
    /// format are reported as [`TraceError::Truncated`]).
    Io(io::Error),
    /// The file does not start with the `SVFT` magic; the found prefix is
    /// attached (little-endian).
    BadMagic(u32),
    /// The header version is not the one this reader understands.
    UnsupportedVersion(u16),
    /// EOF in the middle of the header.
    TruncatedHeader,
    /// EOF in the middle of record number `record` (0-based).
    Truncated {
        /// Index of the record being decoded when input ran out.
        record: u64,
    },
    /// The instruction word in record `record` does not decode.
    BadInst {
        /// Index of the offending record.
        record: u64,
        /// The decoder's diagnostic.
        msg: String,
    },
    /// A varint in record `record` ran past 64 bits.
    VarintOverflow {
        /// Index of the offending record.
        record: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic(m) => {
                write!(f, "not an SVFT trace (magic {m:#010x}, want {MAGIC:#010x})")
            }
            TraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace version {v} (this reader understands {VERSION})")
            }
            TraceError::TruncatedHeader => write!(f, "truncated trace header"),
            TraceError::Truncated { record } => {
                write!(f, "trace truncated inside record {record}")
            }
            TraceError::BadInst { record, msg } => {
                write!(f, "record {record} has an undecodable instruction: {msg}")
            }
            TraceError::VarintOverflow { record } => {
                write!(f, "record {record} has a varint wider than 64 bits")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for io::Error {
    fn from(e: TraceError) -> io::Error {
        match e {
            TraceError::Io(io) => io,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// How a low-level read inside the format failed; the reader attaches the
/// position (header / record index) to build the public [`TraceError`].
enum ReadFail {
    Eof,
    Overflow,
    Io(io::Error),
}

impl ReadFail {
    fn from_io(e: io::Error) -> ReadFail {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ReadFail::Eof
        } else {
            ReadFail::Io(e)
        }
    }
}

fn read_exact<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), ReadFail> {
    r.read_exact(buf).map_err(ReadFail::from_io)
}

fn read_varint<R: Read>(r: &mut R) -> Result<u64, ReadFail> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let mut b = [0u8; 1];
        read_exact(r, &mut b)?;
        v |= u64::from(b[0] & 0x7F) << shift;
        if b[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(ReadFail::Overflow);
        }
    }
}

/// Streams [`Retired`] records into a compact binary trace.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    prev_pc: u64,
    prev_sp: u64,
    records: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the header and returns the writer. `initial_sp` is the value
    /// of `$sp` before the first record (for programs started by
    /// [`crate::Emulator`] that is `svf_isa::STACK_BASE`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying sink.
    pub fn new(mut out: W, entry: u64, heap_base: u64, initial_sp: u64) -> io::Result<TraceWriter<W>> {
        out.write_all(&MAGIC.to_le_bytes())?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&[0u8; 2])?; // reserved
        write_varint(&mut out, entry)?;
        write_varint(&mut out, heap_base)?;
        write_varint(&mut out, initial_sp)?;
        Ok(TraceWriter { out, prev_pc: entry.wrapping_sub(4), prev_sp: 0, records: 0 })
    }

    /// Appends one committed instruction.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying sink.
    pub fn push(&mut self, r: &Retired) -> io::Result<()> {
        let mut flags = 0u8;
        if r.mem.is_some() {
            flags |= 1;
        }
        if r.control.is_some() {
            flags |= 2;
        }
        if r.sp_update.is_some() {
            flags |= 4;
        }
        if r.control.is_some_and(|c| c.taken) {
            flags |= 8;
        }
        if r.mem.is_some_and(|m| m.is_store) {
            flags |= 16;
        }
        if r.sp_update.is_some_and(|u| u.immediate) {
            flags |= 32;
        }
        self.out.write_all(&[flags])?;
        write_varint(&mut self.out, zigzag(r.pc as i64 - (self.prev_pc.wrapping_add(4)) as i64))?;
        self.out.write_all(&encode(&r.inst).to_le_bytes())?;
        if let Some(m) = r.mem {
            write_varint(&mut self.out, zigzag(m.addr as i64 - r.sp_before as i64))?;
            self.out.write_all(&[m.size, m.base.number()])?;
        }
        if let Some(c) = r.control {
            write_varint(&mut self.out, zigzag(c.target as i64 - (r.pc + 4) as i64))?;
        }
        if let Some(u) = r.sp_update {
            write_varint(&mut self.out, zigzag(u.new_sp as i64 - u.old_sp as i64))?;
        }
        write_varint(&mut self.out, zigzag(r.sp_before as i64 - self.prev_sp as i64))?;
        self.prev_pc = r.pc;
        self.prev_sp = r.sp_before;
        self.records += 1;
        Ok(())
    }

    /// Number of records written so far.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates the final flush failure.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Replays a binary trace as [`Retired`] records.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: R,
    prev_pc: u64,
    prev_sp: u64,
    records: u64,
    /// Entry PC from the header.
    pub entry: u64,
    /// Heap base from the header (for region classification).
    pub heap_base: u64,
    /// `$sp` before the first record, from the header.
    pub initial_sp: u64,
}

impl<R: Read> TraceReader<R> {
    /// Validates the header and returns the reader.
    ///
    /// # Errors
    ///
    /// [`TraceError::BadMagic`], [`TraceError::UnsupportedVersion`] or
    /// [`TraceError::TruncatedHeader`] for malformed input; underlying
    /// failures surface as [`TraceError::Io`].
    pub fn new(mut input: R) -> Result<TraceReader<R>, TraceError> {
        let header = |f: ReadFail| match f {
            ReadFail::Eof | ReadFail::Overflow => TraceError::TruncatedHeader,
            ReadFail::Io(e) => TraceError::Io(e),
        };
        let mut word = [0u8; 4];
        read_exact(&mut input, &mut word).map_err(header)?;
        let magic = u32::from_le_bytes(word);
        if magic != MAGIC {
            return Err(TraceError::BadMagic(magic));
        }
        let mut ver = [0u8; 2];
        read_exact(&mut input, &mut ver).map_err(header)?;
        let version = u16::from_le_bytes(ver);
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let mut reserved = [0u8; 2];
        read_exact(&mut input, &mut reserved).map_err(header)?;
        let entry = read_varint(&mut input).map_err(header)?;
        let heap_base = read_varint(&mut input).map_err(header)?;
        let initial_sp = read_varint(&mut input).map_err(header)?;
        Ok(TraceReader {
            input,
            prev_pc: entry.wrapping_sub(4),
            prev_sp: 0,
            records: 0,
            entry,
            heap_base,
            initial_sp,
        })
    }

    /// Number of records decoded so far.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Maps a mid-record read failure to its public error.
    fn fail(&self, f: ReadFail) -> TraceError {
        match f {
            ReadFail::Eof => TraceError::Truncated { record: self.records },
            ReadFail::Overflow => TraceError::VarintOverflow { record: self.records },
            ReadFail::Io(e) => TraceError::Io(e),
        }
    }

    /// Reads the next record; `Ok(None)` at a clean end of stream.
    ///
    /// # Errors
    ///
    /// [`TraceError::Truncated`] on EOF inside a record, and
    /// [`TraceError::BadInst`]/[`TraceError::VarintOverflow`] on corrupt
    /// content; a cut exactly on a record boundary is indistinguishable
    /// from a complete trace and reads as a clean end.
    pub fn next_record(&mut self) -> Result<Option<Retired>, TraceError> {
        let mut flags = [0u8; 1];
        match read_exact(&mut self.input, &mut flags) {
            Ok(()) => {}
            Err(ReadFail::Eof) => return Ok(None),
            Err(f) => return Err(self.fail(f)),
        }
        let flags = flags[0];
        let pc_delta = read_varint(&mut self.input).map_err(|f| self.fail(f))?;
        let pc = (self.prev_pc.wrapping_add(4) as i64 + unzigzag(pc_delta)) as u64;
        let mut word = [0u8; 4];
        read_exact(&mut self.input, &mut word).map_err(|f| self.fail(f))?;
        let inst = decode(u32::from_le_bytes(word))
            .map_err(|e| TraceError::BadInst { record: self.records, msg: e.to_string() })?;
        let mut mem = None;
        if flags & 1 != 0 {
            let rel = read_varint(&mut self.input).map_err(|f| self.fail(f))?;
            let mut sb = [0u8; 2];
            read_exact(&mut self.input, &mut sb).map_err(|f| self.fail(f))?;
            mem = Some((unzigzag(rel), sb[0], Reg::from_number(sb[1] & 31), flags & 16 != 0));
        }
        let mut control = None;
        if flags & 2 != 0 {
            let d = read_varint(&mut self.input).map_err(|f| self.fail(f))?;
            let target = (pc + 4) as i64 + unzigzag(d);
            control = Some(ControlFlow { taken: flags & 8 != 0, target: target as u64 });
        }
        let mut sp_delta = None;
        if flags & 4 != 0 {
            sp_delta = Some(unzigzag(read_varint(&mut self.input).map_err(|f| self.fail(f))?));
        }
        let sp_raw = read_varint(&mut self.input).map_err(|f| self.fail(f))?;
        let sp_before = (self.prev_sp as i64 + unzigzag(sp_raw)) as u64;
        let mem = mem.map(|(rel, size, base, is_store)| MemAccess {
            addr: (sp_before as i64 + rel) as u64,
            size,
            is_store,
            base,
        });
        let sp_update = sp_delta.map(|d| SpUpdate {
            old_sp: sp_before,
            new_sp: (sp_before as i64 + d) as u64,
            immediate: flags & 32 != 0,
        });
        let next_pc = control.map_or(pc + 4, |c| if c.taken { c.target } else { pc + 4 });
        self.prev_pc = pc;
        self.prev_sp = sp_before;
        self.records += 1;
        Ok(Some(Retired { pc, inst, next_pc, mem, control, sp_update, sp_before }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Emulator;
    use proptest::prelude::*;
    use proptest::{collection, sample};
    use svf_asm::assemble;
    use svf_isa::STACK_BASE;

    fn capture(src: &str) -> (Vec<Retired>, Vec<u8>, u64, u64) {
        let p = assemble(src).expect("assembles");
        let mut emu = Emulator::new(&p);
        let mut w =
            TraceWriter::new(Vec::new(), p.entry, p.heap_base, STACK_BASE).expect("header");
        let mut records = Vec::new();
        while !emu.is_halted() {
            let r = emu.step().expect("runs");
            w.push(&r).expect("writes");
            records.push(r);
        }
        let n = w.records();
        let bytes = w.finish().expect("finish");
        (records, bytes, n, p.heap_base)
    }

    const KERNEL: &str = "
main:
    lda $sp, -32($sp)
    li $t0, 10
.loop:
    stq $t0, 8($sp)
    ldq $t1, 8($sp)
    addq $t2, $t1, $t2
    subq $t0, 1, $t0
    bne $t0, .loop
    mov $t2, $a0
    putint
    lda $sp, 32($sp)
    halt";

    #[test]
    fn round_trip_is_lossless() {
        let (records, bytes, n, heap_base) = capture(KERNEL);
        assert_eq!(n as usize, records.len());
        let mut r = TraceReader::new(bytes.as_slice()).expect("header");
        assert_eq!(r.heap_base, heap_base);
        assert_eq!(r.initial_sp, STACK_BASE);
        for (i, want) in records.iter().enumerate() {
            let got = r.next_record().expect("reads").unwrap_or_else(|| panic!("short at {i}"));
            assert_eq!(&got, want, "record {i} diverged");
        }
        assert!(r.next_record().expect("eof check").is_none());
        assert_eq!(r.records(), n);
    }

    #[test]
    fn traces_are_compact() {
        let (records, bytes, _, _) = capture(KERNEL);
        let per_record = bytes.len() as f64 / records.len() as f64;
        assert!(
            per_record < 12.0,
            "expected <12 bytes/record, got {per_record:.1} ({} bytes, {} records)",
            bytes.len(),
            records.len()
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        match TraceReader::new(&b"NOPE0000"[..]) {
            Err(TraceError::BadMagic(m)) => assert_eq!(m, u32::from_le_bytes(*b"NOPE")),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let (_, bytes, _, _) = capture(KERNEL);
        let mut v1 = bytes;
        v1[4] = 1; // patch the version field down
        v1[5] = 0;
        match TraceReader::new(v1.as_slice()) {
            Err(TraceError::UnsupportedVersion(1)) => {}
            other => panic!("expected UnsupportedVersion(1), got {other:?}"),
        }
    }

    #[test]
    fn truncated_header_is_rejected() {
        let (_, bytes, _, _) = capture(KERNEL);
        for cut in [0, 3, 5, 7] {
            match TraceReader::new(&bytes[..cut]) {
                Err(TraceError::TruncatedHeader | TraceError::BadMagic(_)) => {}
                other => panic!("cut at {cut}: expected a typed header error, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_stream_errors_midrecord() {
        let (_, bytes, _, _) = capture(KERNEL);
        // Cut inside a record (past the header, not on a boundary).
        let cut = &bytes[..bytes.len() - 3];
        let mut r = TraceReader::new(cut).expect("header ok");
        loop {
            match r.next_record() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("a mid-record cut must be detected"),
                Err(TraceError::Truncated { record }) => {
                    assert_eq!(record, r.records(), "error names the cut record");
                    break;
                }
                Err(other) => panic!("expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_possible_cut_is_an_error_or_a_shorter_trace() {
        // Robustness sweep: no prefix of a valid trace may panic or decode
        // more records than the original.
        let (records, bytes, _, _) = capture(KERNEL);
        for cut in 0..bytes.len() {
            match TraceReader::new(&bytes[..cut]) {
                Err(_) => {}
                Ok(mut r) => {
                    let mut n = 0usize;
                    while let Ok(Some(_)) = r.next_record() {
                        n += 1;
                    }
                    assert!(n <= records.len(), "cut {cut} decoded {n} records");
                }
            }
        }
    }

    /// An arbitrary record that satisfies the invariants the format
    /// exploits (and every emulator-produced record satisfies): `next_pc`
    /// follows from `control`, and `sp_update.old_sp == sp_before`.
    fn arb_record() -> impl Strategy<Value = Retired> {
        let inst = (0u32..u32::MAX)
            .prop_map(|w| decode(w).ok().filter(|i| encode(i) == w))
            .prop_map(|i| i.unwrap_or(Retired::PLACEHOLDER.inst));
        // Keep addresses well under 2^62 so the format's i64 deltas cannot
        // overflow (real PCs/addresses are far smaller still).
        let small = 0u64..1 << 48;
        (
            (small.clone(), inst, small.clone()),
            (any::<bool>(), any::<bool>(), 0u64..3, 1u64..1 << 40),
            (0u64..3, any::<bool>(), 0i64..4096),
            sample::select(vec![1u8, 4, 8]),
        )
            .prop_map(|((pc, inst, sp_before), (taken, is_store, has_ctl, target), (has_mem, imm, sp_delta), size)| {
                let control = (has_ctl != 0).then_some(ControlFlow { taken, target });
                let mem = (has_mem != 0).then_some(MemAccess {
                    addr: sp_before.wrapping_add(u64::from(size)) & ((1 << 48) - 1),
                    size,
                    is_store,
                    base: Reg::from_number((target & 31) as u8),
                });
                let sp_update = (sp_delta != 0).then_some(SpUpdate {
                    old_sp: sp_before,
                    new_sp: (sp_before as i64 + sp_delta) as u64,
                    immediate: imm,
                });
                let next_pc = control.map_or(pc + 4, |c| if c.taken { c.target } else { pc + 4 });
                Retired { pc, inst, next_pc, mem, control, sp_update, sp_before }
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn arbitrary_records_round_trip(
            records in collection::vec(arb_record(), 0..64),
            entry in 0u64..1 << 40,
            heap_base in 0u64..1 << 40,
            initial_sp in 0u64..1 << 40,
        ) {
            let mut w = TraceWriter::new(Vec::new(), entry, heap_base, initial_sp)
                .expect("header");
            for r in &records {
                w.push(r).expect("writes");
            }
            let bytes = w.finish().expect("finish");
            let mut rd = TraceReader::new(bytes.as_slice()).expect("header");
            prop_assert_eq!(rd.entry, entry);
            prop_assert_eq!(rd.heap_base, heap_base);
            prop_assert_eq!(rd.initial_sp, initial_sp);
            for (i, want) in records.iter().enumerate() {
                let got = rd.next_record().expect("reads");
                prop_assert_eq!(got.as_ref(), Some(want), "record {} diverged", i);
            }
            prop_assert!(rd.next_record().expect("eof").is_none());
        }
    }
}
