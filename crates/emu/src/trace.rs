//! Compact binary traces of committed instructions.
//!
//! A [`TraceWriter`] serializes [`Retired`] records into a small
//! variable-length format (~4–12 bytes per instruction for typical code),
//! and a [`TraceReader`] replays them. Traces let expensive functional runs
//! be captured once and re-analyzed (characterization, traffic simulation)
//! without re-executing, and serve as an interchange format with other
//! tools.
//!
//! Format: a fixed 16-byte header (`magic`, version, entry PC, heap base)
//! followed by one variable-length record per instruction:
//!
//! ```text
//! flags: u8      bit0 mem, bit1 control, bit2 sp_update, bit3 taken,
//!                bit4 store, bit5 sp-immediate
//! pc:    varint  delta-encoded against prev_pc + 4 (zigzag)
//! word:  u32     raw instruction encoding
//! [addr: varint  delta vs sp_before (zigzag), size: u8]        if mem
//! [target: varint delta vs pc + 4 (zigzag)]                    if control
//! [new_sp: varint delta vs old_sp (zigzag)]                    if sp_update
//! sp_before: varint delta vs prev record's sp_before (zigzag)
//! ```

use std::io::{self, Read, Write};

use svf_isa::{decode, encode, Reg};

use crate::retired::{ControlFlow, MemAccess, Retired, SpUpdate};

const MAGIC: u32 = 0x53_56_46_54; // "SVFT"
const VERSION: u16 = 1;

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        v |= u64::from(b[0] & 0x7F) << shift;
        if b[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "varint overflow"));
        }
    }
}

/// Streams [`Retired`] records into a compact binary trace.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    prev_pc: u64,
    prev_sp: u64,
    records: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the header and returns the writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying sink.
    pub fn new(mut out: W, entry: u64, heap_base: u64) -> io::Result<TraceWriter<W>> {
        out.write_all(&MAGIC.to_le_bytes())?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&[0u8; 2])?; // reserved
        write_varint(&mut out, entry)?;
        write_varint(&mut out, heap_base)?;
        Ok(TraceWriter { out, prev_pc: entry.wrapping_sub(4), prev_sp: 0, records: 0 })
    }

    /// Appends one committed instruction.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying sink.
    pub fn push(&mut self, r: &Retired) -> io::Result<()> {
        let mut flags = 0u8;
        if r.mem.is_some() {
            flags |= 1;
        }
        if r.control.is_some() {
            flags |= 2;
        }
        if r.sp_update.is_some() {
            flags |= 4;
        }
        if r.control.is_some_and(|c| c.taken) {
            flags |= 8;
        }
        if r.mem.is_some_and(|m| m.is_store) {
            flags |= 16;
        }
        if r.sp_update.is_some_and(|u| u.immediate) {
            flags |= 32;
        }
        self.out.write_all(&[flags])?;
        write_varint(&mut self.out, zigzag(r.pc as i64 - (self.prev_pc.wrapping_add(4)) as i64))?;
        self.out.write_all(&encode(&r.inst).to_le_bytes())?;
        if let Some(m) = r.mem {
            write_varint(&mut self.out, zigzag(m.addr as i64 - r.sp_before as i64))?;
            self.out.write_all(&[m.size, m.base.number()])?;
        }
        if let Some(c) = r.control {
            write_varint(&mut self.out, zigzag(c.target as i64 - (r.pc + 4) as i64))?;
        }
        if let Some(u) = r.sp_update {
            write_varint(&mut self.out, zigzag(u.new_sp as i64 - u.old_sp as i64))?;
        }
        write_varint(&mut self.out, zigzag(r.sp_before as i64 - self.prev_sp as i64))?;
        self.prev_pc = r.pc;
        self.prev_sp = r.sp_before;
        self.records += 1;
        Ok(())
    }

    /// Number of records written so far.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates the final flush failure.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Replays a binary trace as [`Retired`] records.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: R,
    prev_pc: u64,
    prev_sp: u64,
    /// Entry PC from the header.
    pub entry: u64,
    /// Heap base from the header (for region classification).
    pub heap_base: u64,
}

impl<R: Read> TraceReader<R> {
    /// Validates the header and returns the reader.
    ///
    /// # Errors
    ///
    /// Fails on bad magic/version or I/O errors.
    pub fn new(mut input: R) -> io::Result<TraceReader<R>> {
        let mut word = [0u8; 4];
        input.read_exact(&mut word)?;
        if u32::from_le_bytes(word) != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not an SVFT trace"));
        }
        let mut ver = [0u8; 2];
        input.read_exact(&mut ver)?;
        if u16::from_le_bytes(ver) != VERSION {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "unsupported trace version"));
        }
        let mut reserved = [0u8; 2];
        input.read_exact(&mut reserved)?;
        let entry = read_varint(&mut input)?;
        let heap_base = read_varint(&mut input)?;
        Ok(TraceReader { input, prev_pc: entry.wrapping_sub(4), prev_sp: 0, entry, heap_base })
    }

    /// Reads the next record; `Ok(None)` at a clean end of stream.
    ///
    /// # Errors
    ///
    /// Fails on truncated or corrupt input.
    pub fn next_record(&mut self) -> io::Result<Option<Retired>> {
        let mut flags = [0u8; 1];
        match self.input.read_exact(&mut flags) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let flags = flags[0];
        let pc = (self.prev_pc.wrapping_add(4) as i64 + unzigzag(read_varint(&mut self.input)?))
            as u64;
        let mut word = [0u8; 4];
        self.input.read_exact(&mut word)?;
        let inst = decode(u32::from_le_bytes(word))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut mem = None;
        if flags & 1 != 0 {
            let sp_rel_addr = unzigzag(read_varint(&mut self.input)?);
            let mut sb = [0u8; 2];
            self.input.read_exact(&mut sb)?;
            mem = Some((sp_rel_addr, sb[0], Reg::from_number(sb[1] & 31), flags & 16 != 0));
        }
        let mut control = None;
        if flags & 2 != 0 {
            let target = (pc + 4) as i64 + unzigzag(read_varint(&mut self.input)?);
            control = Some(ControlFlow { taken: flags & 8 != 0, target: target as u64 });
        }
        let mut sp_delta = None;
        if flags & 4 != 0 {
            sp_delta = Some(unzigzag(read_varint(&mut self.input)?));
        }
        let sp_before =
            (self.prev_sp as i64 + unzigzag(read_varint(&mut self.input)?)) as u64;
        let mem = mem.map(|(rel, size, base, is_store)| MemAccess {
            addr: (sp_before as i64 + rel) as u64,
            size,
            is_store,
            base,
        });
        let sp_update = sp_delta.map(|d| SpUpdate {
            old_sp: sp_before,
            new_sp: (sp_before as i64 + d) as u64,
            immediate: flags & 32 != 0,
        });
        let next_pc = control.map_or(pc + 4, |c| if c.taken { c.target } else { pc + 4 });
        self.prev_pc = pc;
        self.prev_sp = sp_before;
        Ok(Some(Retired { pc, inst, next_pc, mem, control, sp_update, sp_before }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Emulator;
    use svf_asm::assemble;

    fn capture(src: &str) -> (Vec<Retired>, Vec<u8>, u64, u64) {
        let p = assemble(src).expect("assembles");
        let mut emu = Emulator::new(&p);
        let mut w = TraceWriter::new(Vec::new(), p.entry, p.heap_base).expect("header");
        let mut records = Vec::new();
        while !emu.is_halted() {
            let r = emu.step().expect("runs");
            w.push(&r).expect("writes");
            records.push(r);
        }
        let n = w.records();
        let bytes = w.finish().expect("finish");
        (records, bytes, n, p.heap_base)
    }

    const KERNEL: &str = "
main:
    lda $sp, -32($sp)
    li $t0, 10
.loop:
    stq $t0, 8($sp)
    ldq $t1, 8($sp)
    addq $t2, $t1, $t2
    subq $t0, 1, $t0
    bne $t0, .loop
    mov $t2, $a0
    putint
    lda $sp, 32($sp)
    halt";

    #[test]
    fn round_trip_is_lossless() {
        let (records, bytes, n, heap_base) = capture(KERNEL);
        assert_eq!(n as usize, records.len());
        let mut r = TraceReader::new(bytes.as_slice()).expect("header");
        assert_eq!(r.heap_base, heap_base);
        for (i, want) in records.iter().enumerate() {
            let got = r.next_record().expect("reads").unwrap_or_else(|| panic!("short at {i}"));
            assert_eq!(&got, want, "record {i} diverged");
        }
        assert!(r.next_record().expect("eof check").is_none());
    }

    #[test]
    fn traces_are_compact() {
        let (records, bytes, _, _) = capture(KERNEL);
        let per_record = bytes.len() as f64 / records.len() as f64;
        assert!(
            per_record < 12.0,
            "expected <12 bytes/record, got {per_record:.1} ({} bytes, {} records)",
            bytes.len(),
            records.len()
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = TraceReader::new(&b"NOPE0000"[..]).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_errors_midrecord() {
        let (_, bytes, _, _) = capture(KERNEL);
        // Cut inside a record (past the header, not on a boundary).
        let cut = &bytes[..bytes.len() - 3];
        let mut r = TraceReader::new(cut).expect("header ok");
        let mut result = Ok(Some(()));
        loop {
            match r.next_record() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => {
                    result = Err(());
                    break;
                }
            }
        }
        assert!(result.is_err(), "a mid-record cut must be detected");
    }
}
