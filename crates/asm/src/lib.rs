//! # svf-asm — assembler for the SVF reproduction ISA
//!
//! A two-pass text assembler producing [`svf_isa::Program`] images. It is the
//! back end of the `svf-cc` MiniC compiler and is also convenient for writing
//! hand-crafted test kernels.
//!
//! ## Syntax
//!
//! ```text
//! ; comment (also # and //)
//!         .text
//! main:                         ; non-dot labels in .text are functions
//!         lda   $sp, -16($sp)   ; grow the stack
//!         stq   $ra, 0($sp)
//!         li    $a0, 42         ; pseudo: load immediate (any 64-bit value)
//!         la    $t0, counter    ; pseudo: load address of a data label
//!         ldq   $t1, 0($t0)
//!         addq  $t1, 1, $t1     ; 8-bit unsigned literals allowed in ALU ops
//!         stq   $t1, 0($t0)
//!         putint                ; print $a0
//!         ldq   $ra, 0($sp)
//!         lda   $sp, 16($sp)
//!         ret
//!         .data
//! counter:
//!         .quad 0
//! ```
//!
//! ## Pseudo-instructions
//!
//! | pseudo | expansion |
//! |---|---|
//! | `li rd, imm64` | chain of `lda`/`sll` (1–9 instructions, chosen by value) |
//! | `la rd, label` | `ldah` + `lda` pair |
//! | `mov rs, rd` | `bis rs, rs, rd` |
//! | `nop` | `bis $zero, $zero, $zero` |
//! | `call label` | `bsr $ra, label` |
//! | `jsr rb` | `jsr $ra, (rb)` |
//! | `jmp rb` | `jmp $zero, (rb)` |
//! | `ret` | `ret $zero, ($ra)` |
//! | `br label` / `beq r, label` … | PC-relative displacement resolved by the assembler |
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), svf_asm::AsmError> {
//! let program = svf_asm::assemble("
//!     .text
//! main:
//!     li $a0, 7
//!     putint
//!     halt
//! ")?;
//! assert_eq!(program.functions.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod expand;
mod parse;

pub use builder::ProgramBuilder;
pub use expand::{expand_li, la_pair, li_len};
pub use parse::{assemble, AsmError};
