//! A typed program-construction API, used by tests that want to build
//! instruction sequences without going through text assembly.

use std::collections::{BTreeMap, HashMap};

use svf_isa::{encode, BrOp, CondOp, Inst, Program, Reg, DATA_BASE, TEXT_BASE};

/// Incrementally builds a [`Program`] from typed instructions, with label
/// resolution for branches.
///
/// # Example
///
/// ```
/// use svf_asm::ProgramBuilder;
/// use svf_isa::{CondOp, Inst, Operand, AluOp, Reg, SysFunc};
///
/// let mut b = ProgramBuilder::new();
/// b.function("main");
/// b.push(Inst::Lda { high: false, ra: Reg::T0, rb: Reg::ZERO, disp: 3 });
/// b.label("loop");
/// b.push(Inst::Op { op: AluOp::Subq, ra: Reg::T0, rb: Operand::Lit(1), rc: Reg::T0 });
/// b.cond_branch_to(CondOp::Bne, Reg::T0, "loop");
/// b.push(Inst::Sys { func: SysFunc::Halt });
/// let program = b.build().unwrap();
/// assert_eq!(program.text.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Slot>,
    labels: HashMap<String, usize>,
    functions: BTreeMap<u64, String>,
    data: Vec<u8>,
    data_labels: HashMap<String, u64>,
}

#[derive(Debug)]
enum Slot {
    Fixed(Inst),
    Branch { op: Option<CondOp>, br: BrOp, ra: Reg, target: String },
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Appends a fully-specified instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(Slot::Fixed(inst));
        self
    }

    /// Defines a code label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        self.labels.insert(name.to_string(), self.insts.len());
        self
    }

    /// Defines a function symbol (also a label) at the current position.
    pub fn function(&mut self, name: &str) -> &mut Self {
        self.functions.insert(TEXT_BASE + 4 * self.insts.len() as u64, name.to_string());
        self.label(name)
    }

    /// Appends an unconditional branch to a label (resolved at build time).
    pub fn branch_to(&mut self, op: BrOp, ra: Reg, target: &str) -> &mut Self {
        self.insts.push(Slot::Branch { op: None, br: op, ra, target: target.to_string() });
        self
    }

    /// Appends a conditional branch to a label.
    pub fn cond_branch_to(&mut self, op: CondOp, ra: Reg, target: &str) -> &mut Self {
        self.insts.push(Slot::Branch { op: Some(op), br: BrOp::Br, ra, target: target.to_string() });
        self
    }

    /// Appends raw bytes to the data segment, returning their address.
    pub fn data_bytes(&mut self, name: &str, bytes: &[u8]) -> u64 {
        let addr = DATA_BASE + self.data.len() as u64;
        self.data_labels.insert(name.to_string(), addr);
        self.data.extend_from_slice(bytes);
        addr
    }

    /// Address of a previously defined data label.
    #[must_use]
    pub fn data_label(&self, name: &str) -> Option<u64> {
        self.data_labels.get(name).copied()
    }

    /// Resolves labels and produces the program. The entry point is the
    /// `main` label if defined, else the first instruction.
    ///
    /// # Errors
    ///
    /// Returns the name of any branch target that was never defined.
    pub fn build(&self) -> Result<Program, String> {
        let mut text = Vec::with_capacity(self.insts.len());
        for (i, slot) in self.insts.iter().enumerate() {
            let inst = match slot {
                Slot::Fixed(inst) => *inst,
                Slot::Branch { op, br, ra, target } => {
                    let t = *self
                        .labels
                        .get(target)
                        .ok_or_else(|| format!("undefined label `{target}`"))?;
                    let disp = t as i32 - (i as i32 + 1);
                    match op {
                        Some(c) => Inst::CondBr { op: *c, ra: *ra, disp },
                        None => Inst::Br { op: *br, ra: *ra, disp },
                    }
                }
            };
            text.push(encode(&inst));
        }
        let entry = self
            .labels
            .get("main")
            .map_or(TEXT_BASE, |&i| TEXT_BASE + 4 * i as u64);
        let heap_base = (DATA_BASE + self.data.len() as u64).div_ceil(4096) * 4096;
        Ok(Program::from_parts(text, self.data.clone(), entry, heap_base, self.functions.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svf_isa::{decode, SysFunc};

    #[test]
    fn builds_with_forward_branch() {
        let mut b = ProgramBuilder::new();
        b.function("main");
        b.cond_branch_to(CondOp::Beq, Reg::V0, "end");
        b.push(Inst::Sys { func: SysFunc::PutInt });
        b.label("end");
        b.push(Inst::Sys { func: SysFunc::Halt });
        let p = b.build().unwrap();
        match decode(p.text[0]).unwrap() {
            Inst::CondBr { disp, .. } => assert_eq!(disp, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.function("main");
        b.branch_to(BrOp::Br, Reg::ZERO, "nowhere");
        assert!(b.build().unwrap_err().contains("nowhere"));
    }

    #[test]
    fn data_labels_get_addresses() {
        let mut b = ProgramBuilder::new();
        let a = b.data_bytes("x", &[1, 2, 3, 4]);
        let c = b.data_bytes("y", &[5]);
        assert_eq!(a, DATA_BASE);
        assert_eq!(c, DATA_BASE + 4);
        assert_eq!(b.data_label("y"), Some(c));
        assert_eq!(b.data_label("z"), None);
    }
}
