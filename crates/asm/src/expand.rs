//! Pseudo-instruction expansion: immediate and address materialization.

use svf_isa::{AluOp, Inst, Operand, Reg};

/// Decomposes `value` into sign-extended 16-bit chunks such that
/// rebuilding with `((…(c_top << 16) + c_{k-1}) << 16) + …` reproduces it.
/// Returned most-significant first; always 1–5 chunks.
fn chunks(value: i64) -> Vec<i16> {
    let mut lows: Vec<i16> = Vec::new(); // least-significant first
    let mut v = value as i128; // avoid i64 overflow on carry propagation
    loop {
        let lo = (v as i16) as i128; // sign-extended low 16 bits
        lows.push(lo as i16);
        v = (v - lo) >> 16;
        if v == 0 {
            break;
        }
    }
    lows.reverse();
    lows
}

/// Expands `li rd, value` into a minimal `lda`/`ldah`/`sll` sequence.
///
/// * values fitting in signed 16 bits take one instruction;
/// * values fitting in signed 32 bits take two (`ldah` + `lda`);
/// * anything else takes a shift-and-accumulate chain.
///
/// # Example
///
/// ```
/// use svf_asm::expand_li;
/// use svf_isa::Reg;
/// assert_eq!(expand_li(Reg::A0, 42).len(), 1);
/// assert_eq!(expand_li(Reg::A0, 0x12345).len(), 2);
/// assert!(expand_li(Reg::A0, 0x0123_4567_89AB_CDEF).len() <= 9);
/// ```
#[must_use]
pub fn expand_li(rd: Reg, value: i64) -> Vec<Inst> {
    let cs = chunks(value);
    if cs.len() == 1 {
        return vec![Inst::Lda { high: false, ra: rd, rb: Reg::ZERO, disp: cs[0] }];
    }
    if cs.len() == 2 {
        // value == (c0 << 16) + c1 with both sign-extended: ldah + lda.
        let mut out = vec![Inst::Lda { high: true, ra: rd, rb: Reg::ZERO, disp: cs[0] }];
        if cs[1] != 0 {
            out.push(Inst::Lda { high: false, ra: rd, rb: rd, disp: cs[1] });
        }
        return out;
    }
    // General chain: rd = c_top; then per chunk: rd <<= 16; rd += c.
    let mut out = vec![Inst::Lda { high: false, ra: rd, rb: Reg::ZERO, disp: cs[0] }];
    for &c in &cs[1..] {
        out.push(Inst::Op { op: AluOp::Sll, ra: rd, rb: Operand::Lit(16), rc: rd });
        if c != 0 {
            out.push(Inst::Lda { high: false, ra: rd, rb: rd, disp: c });
        }
    }
    out
}

/// Number of instructions [`expand_li`] will emit for `value` (used by the
/// assembler's sizing pass).
#[must_use]
pub fn li_len(rd: Reg, value: i64) -> usize {
    expand_li(rd, value).len()
}

/// Expands `la rd, addr` for a link-time address (always < 2^31 in our
/// layout) into an `ldah`/`lda` pair.
///
/// # Panics
///
/// Panics if the address cannot be reached with a 2-instruction pair, which
/// would indicate a corrupted layout.
#[must_use]
pub fn la_pair(rd: Reg, addr: u64) -> Vec<Inst> {
    let insts = expand_li(rd, addr as i64);
    assert!(insts.len() <= 2, "address {addr:#x} out of la range");
    insts
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Interprets an expansion sequence to recover the materialized value.
    fn eval(insts: &[Inst]) -> i64 {
        let mut regs = [0i64; 32];
        for inst in insts {
            match *inst {
                Inst::Lda { high, ra, rb, disp } => {
                    let base = regs[rb.number() as usize];
                    let d = if high { i64::from(disp) << 16 } else { i64::from(disp) };
                    regs[ra.number() as usize] = base.wrapping_add(d);
                }
                Inst::Op { op, ra, rb, rc } => {
                    let a = regs[ra.number() as usize] as u64;
                    let b = match rb {
                        Operand::Reg(r) => regs[r.number() as usize] as u64,
                        Operand::Lit(l) => u64::from(l),
                    };
                    regs[rc.number() as usize] = op.apply(a, b) as i64;
                }
                ref other => panic!("unexpected inst in expansion: {other:?}"),
            }
            regs[31] = 0;
        }
        regs[Reg::A0.number() as usize]
    }

    #[test]
    fn small_values_single_instruction() {
        for v in [0i64, 1, -1, 42, 32767, -32768] {
            let e = expand_li(Reg::A0, v);
            assert_eq!(e.len(), 1, "value {v}");
            assert_eq!(eval(&e), v);
        }
    }

    #[test]
    fn mid_values_two_instructions() {
        // Values near the positive 32-bit edge (e.g. 0x7FFF_FFFF) need more:
        // `ldah` adds a *sign-extended* high half, exactly as on real Alpha.
        for v in [32768i64, -32769, 1 << 20, 0x1000_0000, -(1 << 30), 0x4000_0000] {
            let e = expand_li(Reg::A0, v);
            assert!(e.len() <= 2, "value {v:#x} took {}", e.len());
            assert_eq!(eval(&e), v, "value {v:#x}");
        }
    }

    #[test]
    fn carry_edge_cases() {
        // Classic carry edges around the 16-bit boundary.
        for v in [0x7FFF_8000i64, 0x7FFF_FFFFi64, -0x8000_0000i64, 0x8000_0000i64] {
            assert_eq!(eval(&expand_li(Reg::A0, v)), v, "value {v:#x}");
        }
    }

    #[test]
    fn full_width_values() {
        for v in [
            i64::MAX,
            i64::MIN,
            0x0123_4567_89AB_CDEFi64,
            6364136223846793005i64,
            1442695040888963407i64,
            -6148914691236517206i64, // 0xAAAA… pattern
        ] {
            let e = expand_li(Reg::A0, v);
            assert!(e.len() <= 9, "value {v:#x} took {}", e.len());
            assert_eq!(eval(&e), v, "value {v:#x}");
        }
    }

    #[test]
    fn la_covers_layout() {
        use svf_isa::{DATA_BASE, STACK_BASE, TEXT_BASE};
        for addr in [TEXT_BASE, DATA_BASE, DATA_BASE + 0x12_3456, STACK_BASE] {
            let e = la_pair(Reg::T0, addr);
            assert!(e.len() <= 2);
            let mut insts = e.clone();
            // Rename destination to A0 for eval's convenience.
            for i in &mut insts {
                if let Inst::Lda { ra, rb, .. } = i {
                    if *ra == Reg::T0 {
                        *ra = Reg::A0;
                    }
                    if *rb == Reg::T0 {
                        *rb = Reg::A0;
                    }
                }
            }
            assert_eq!(eval(&insts) as u64, addr);
        }
    }
}
