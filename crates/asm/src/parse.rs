//! The two-pass text assembler.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use svf_isa::{
    encode, AluOp, BrOp, CondOp, Inst, JmpKind, MemOp, Operand, Program, Reg, SysFunc, DATA_BASE,
    TEXT_BASE,
};

use crate::expand::{expand_li, li_len};

/// An assembly error with the 1-based source line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl Error for AsmError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError { line, msg: msg.into() })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Text,
    Data,
}

/// A parsed source line, before label resolution.
#[derive(Debug)]
enum Item {
    Label(String),
    Inst { mnemonic: String, operands: Vec<String> },
    Directive { name: String, args: Vec<String> },
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for marker in [";", "#", "//"] {
        if let Some(idx) = line.find(marker) {
            end = end.min(idx);
        }
    }
    &line[..end]
}

/// Splits `"ldq $t0, 8($sp)"` into mnemonic + comma-separated operands.
fn split_line(line: &str) -> Option<(String, Vec<String>)> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    let (head, rest) = match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], &line[i..]),
        None => (line, ""),
    };
    let operands = rest
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>();
    Some((head.to_lowercase(), operands))
}

fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(ch) = s.strip_prefix('\'').and_then(|r| r.strip_suffix('\'')) {
        let mut chars = ch.chars();
        let c = match chars.next()? {
            '\\' => match chars.next()? {
                'n' => '\n',
                't' => '\t',
                '0' => '\0',
                '\\' => '\\',
                '\'' => '\'',
                _ => return None,
            },
            c => c,
        };
        if chars.next().is_some() {
            return None;
        }
        return Some(c as i64);
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()? as i64
    } else {
        body.parse::<u64>().ok()? as i64
    };
    Some(if neg { v.wrapping_neg() } else { v })
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, AsmError> {
    Reg::parse(s).ok_or_else(|| AsmError { line, msg: format!("bad register `{s}`") })
}

/// Parses `disp(reg)` or `(reg)` memory operands.
fn parse_mem_operand(s: &str, line: usize) -> Result<(i16, Reg), AsmError> {
    let open = s.find('(');
    let close = s.rfind(')');
    match (open, close) {
        (Some(o), Some(c)) if c > o => {
            let disp_str = s[..o].trim();
            let disp = if disp_str.is_empty() {
                0
            } else {
                let v = parse_int(disp_str)
                    .ok_or_else(|| AsmError { line, msg: format!("bad displacement `{disp_str}`") })?;
                i16::try_from(v).map_err(|_| AsmError {
                    line,
                    msg: format!("displacement {v} out of 16-bit range"),
                })?
            };
            let reg = parse_reg(s[o + 1..c].trim(), line)?;
            Ok((disp, reg))
        }
        _ => err(line, format!("bad memory operand `{s}`")),
    }
}

const COND_OPS: [(&str, CondOp); 6] = [
    ("beq", CondOp::Beq),
    ("bne", CondOp::Bne),
    ("blt", CondOp::Blt),
    ("ble", CondOp::Ble),
    ("bge", CondOp::Bge),
    ("bgt", CondOp::Bgt),
];

const MEM_OPS: [(&str, MemOp); 6] = [
    ("ldq", MemOp::Ldq),
    ("ldl", MemOp::Ldl),
    ("ldbu", MemOp::Ldbu),
    ("stq", MemOp::Stq),
    ("stl", MemOp::Stl),
    ("stb", MemOp::Stb),
];

const ALU_OPS: [(&str, AluOp); 16] = [
    ("addq", AluOp::Addq),
    ("subq", AluOp::Subq),
    ("mulq", AluOp::Mulq),
    ("divq", AluOp::Divq),
    ("remq", AluOp::Remq),
    ("and", AluOp::And),
    ("bis", AluOp::Bis),
    ("xor", AluOp::Xor),
    ("sll", AluOp::Sll),
    ("srl", AluOp::Srl),
    ("sra", AluOp::Sra),
    ("cmpeq", AluOp::Cmpeq),
    ("cmplt", AluOp::Cmplt),
    ("cmple", AluOp::Cmple),
    ("cmpult", AluOp::Cmpult),
    ("cmpule", AluOp::Cmpule),
];

/// How many instruction words a source instruction will occupy (pass 1).
fn inst_len(mnemonic: &str, operands: &[String], line: usize) -> Result<usize, AsmError> {
    match mnemonic {
        "li" => {
            if operands.len() != 2 {
                return err(line, "li needs 2 operands");
            }
            let rd = parse_reg(&operands[0], line)?;
            let v = parse_int(&operands[1])
                .ok_or_else(|| AsmError { line, msg: format!("bad immediate `{}`", operands[1]) })?;
            Ok(li_len(rd, v))
        }
        "la" => Ok(2),
        _ => Ok(1),
    }
}

/// Encodes one source instruction into `out` (pass 2).
#[allow(clippy::too_many_lines)]
fn encode_inst(
    mnemonic: &str,
    operands: &[String],
    pc_index: usize,
    labels: &HashMap<String, u64>,
    out: &mut Vec<Inst>,
    line: usize,
) -> Result<(), AsmError> {
    let label_addr = |name: &str| -> Result<u64, AsmError> {
        labels
            .get(name)
            .copied()
            .ok_or_else(|| AsmError { line, msg: format!("undefined label `{name}`") })
    };
    let branch_disp = |target: u64, at_index: usize| -> Result<i32, AsmError> {
        let next = TEXT_BASE + 4 * (at_index as u64 + 1);
        let delta = (target as i64 - next as i64) / 4;
        i32::try_from(delta)
            .ok()
            .filter(|d| (-(1 << 20)..(1 << 20)).contains(d))
            .ok_or_else(|| AsmError { line, msg: format!("branch target out of range ({delta})") })
    };
    let need = |n: usize| -> Result<(), AsmError> {
        if operands.len() == n {
            Ok(())
        } else {
            err(line, format!("`{mnemonic}` needs {n} operand(s), got {}", operands.len()))
        }
    };

    if let Some((_, op)) = MEM_OPS.iter().find(|(m, _)| *m == mnemonic) {
        need(2)?;
        let ra = parse_reg(&operands[0], line)?;
        let (disp, rb) = parse_mem_operand(&operands[1], line)?;
        out.push(Inst::Mem { op: *op, ra, rb, disp });
        return Ok(());
    }
    if let Some((_, op)) = ALU_OPS.iter().find(|(m, _)| *m == mnemonic) {
        need(3)?;
        let ra = parse_reg(&operands[0], line)?;
        let rb = if let Some(v) = parse_int(&operands[1]) {
            let lit = u8::try_from(v).map_err(|_| AsmError {
                line,
                msg: format!("ALU literal {v} out of 0..=255 range"),
            })?;
            Operand::Lit(lit)
        } else {
            Operand::Reg(parse_reg(&operands[1], line)?)
        };
        let rc = parse_reg(&operands[2], line)?;
        out.push(Inst::Op { op: *op, ra, rb, rc });
        return Ok(());
    }
    if let Some((_, op)) = COND_OPS.iter().find(|(m, _)| *m == mnemonic) {
        need(2)?;
        let ra = parse_reg(&operands[0], line)?;
        let disp = branch_disp(label_addr(&operands[1])?, pc_index)?;
        out.push(Inst::CondBr { op: *op, ra, disp });
        return Ok(());
    }
    match mnemonic {
        "lda" | "ldah" => {
            need(2)?;
            let ra = parse_reg(&operands[0], line)?;
            let (disp, rb) = parse_mem_operand(&operands[1], line)?;
            out.push(Inst::Lda { high: mnemonic == "ldah", ra, rb, disp });
        }
        "li" => {
            need(2)?;
            let rd = parse_reg(&operands[0], line)?;
            let v = parse_int(&operands[1])
                .ok_or_else(|| AsmError { line, msg: format!("bad immediate `{}`", operands[1]) })?;
            out.extend(expand_li(rd, v));
        }
        "la" => {
            need(2)?;
            let rd = parse_reg(&operands[0], line)?;
            let addr = label_addr(&operands[1])?;
            let pair = expand_li(rd, addr as i64);
            if pair.len() > 2 {
                return err(line, format!("address {addr:#x} out of la range"));
            }
            out.extend(pair.clone());
            // Keep the 2-word size promised by pass 1.
            for _ in pair.len()..2 {
                out.push(Inst::Op {
                    op: AluOp::Bis,
                    ra: Reg::ZERO,
                    rb: Operand::Reg(Reg::ZERO),
                    rc: Reg::ZERO,
                });
            }
        }
        "mov" => {
            need(2)?;
            let rs = parse_reg(&operands[0], line)?;
            let rd = parse_reg(&operands[1], line)?;
            out.push(Inst::Op { op: AluOp::Bis, ra: rs, rb: Operand::Reg(rs), rc: rd });
        }
        "nop" => {
            need(0)?;
            out.push(Inst::Op {
                op: AluOp::Bis,
                ra: Reg::ZERO,
                rb: Operand::Reg(Reg::ZERO),
                rc: Reg::ZERO,
            });
        }
        "br" => {
            need(1)?;
            let disp = branch_disp(label_addr(&operands[0])?, pc_index)?;
            out.push(Inst::Br { op: BrOp::Br, ra: Reg::ZERO, disp });
        }
        "bsr" | "call" => {
            need(1)?;
            let disp = branch_disp(label_addr(&operands[0])?, pc_index)?;
            out.push(Inst::Br { op: BrOp::Bsr, ra: Reg::RA, disp });
        }
        "jmp" => {
            need(1)?;
            let target = operands[0].trim_start_matches('(').trim_end_matches(')');
            let rb = parse_reg(target, line)?;
            out.push(Inst::Jmp { kind: JmpKind::Jmp, ra: Reg::ZERO, rb });
        }
        "jsr" => {
            need(1)?;
            let target = operands[0].trim_start_matches('(').trim_end_matches(')');
            let rb = parse_reg(target, line)?;
            out.push(Inst::Jmp { kind: JmpKind::Jsr, ra: Reg::RA, rb });
        }
        "ret" => {
            need(0)?;
            out.push(Inst::Jmp { kind: JmpKind::Ret, ra: Reg::ZERO, rb: Reg::RA });
        }
        "halt" => {
            need(0)?;
            out.push(Inst::Sys { func: SysFunc::Halt });
        }
        "putint" => {
            need(0)?;
            out.push(Inst::Sys { func: SysFunc::PutInt });
        }
        "putchar" => {
            need(0)?;
            out.push(Inst::Sys { func: SysFunc::PutChar });
        }
        _ => return err(line, format!("unknown mnemonic `{mnemonic}`")),
    }
    Ok(())
}

/// Assembles a source string into a [`Program`].
///
/// The entry point is `_start` if that label exists, otherwise `main`.
/// Labels in `.text` not beginning with `.` are recorded as function symbols.
///
/// # Errors
///
/// Returns an [`AsmError`] carrying the offending line on any syntax error,
/// undefined or duplicate label, or out-of-range field.
#[allow(clippy::too_many_lines)]
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    // ---- Tokenize into items. ----
    let mut items: Vec<(usize, Segment, Item)> = Vec::new();
    let mut segment = Segment::Text;
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let mut rest = strip_comment(raw).trim();
        while let Some(colon) = rest.find(':') {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty()
                || !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                break;
            }
            items.push((line_no, segment, Item::Label(label.to_string())));
            rest = tail[1..].trim();
        }
        let Some((head, operands)) = split_line(rest) else { continue };
        if let Some(name) = head.strip_prefix('.') {
            match name {
                "text" => segment = Segment::Text,
                "data" => segment = Segment::Data,
                _ => items.push((
                    line_no,
                    segment,
                    Item::Directive { name: name.to_string(), args: operands },
                )),
            }
        } else {
            items.push((line_no, segment, Item::Inst { mnemonic: head, operands }));
        }
    }

    // ---- Pass 1: lay out addresses. ----
    let mut labels: HashMap<String, u64> = HashMap::new();
    let mut functions = std::collections::BTreeMap::new();
    let mut text_words = 0u64;
    let mut data_bytes = 0u64;
    for (line, seg, item) in &items {
        match item {
            Item::Label(name) => {
                let addr = match seg {
                    Segment::Text => TEXT_BASE + 4 * text_words,
                    Segment::Data => DATA_BASE + data_bytes,
                };
                if labels.insert(name.clone(), addr).is_some() {
                    return err(*line, format!("duplicate label `{name}`"));
                }
                if *seg == Segment::Text && !name.starts_with('.') {
                    functions.insert(addr, name.clone());
                }
            }
            Item::Inst { mnemonic, operands } => {
                if *seg != Segment::Text {
                    return err(*line, "instruction outside .text");
                }
                text_words += inst_len(mnemonic, operands, *line)? as u64;
            }
            Item::Directive { name, args } => match name.as_str() {
                "quad" => data_bytes += 8 * args.len().max(1) as u64,
                "byte" => data_bytes += args.len().max(1) as u64,
                "space" => {
                    let n = args
                        .first()
                        .and_then(|a| parse_int(a))
                        .filter(|&n| n >= 0)
                        .ok_or_else(|| AsmError { line: *line, msg: ".space needs a size".into() })?;
                    data_bytes += n as u64;
                }
                "align" => {
                    let n = args
                        .first()
                        .and_then(|a| parse_int(a))
                        .filter(|&n| n > 0 && (n & (n - 1)) == 0)
                        .ok_or_else(|| AsmError {
                            line: *line,
                            msg: ".align needs a power-of-two size".into(),
                        })?;
                    data_bytes = data_bytes.div_ceil(n as u64) * n as u64;
                }
                other => return err(*line, format!("unknown directive `.{other}`")),
            },
        }
    }

    // ---- Pass 2: encode. ----
    let mut insts: Vec<Inst> = Vec::with_capacity(text_words as usize);
    let mut data: Vec<u8> = Vec::with_capacity(data_bytes as usize);
    for (line, _seg, item) in &items {
        match item {
            Item::Label(_) => {}
            Item::Inst { mnemonic, operands } => {
                encode_inst(mnemonic, operands, insts.len(), &labels, &mut insts, *line)?;
            }
            Item::Directive { name, args } => match name.as_str() {
                "quad" => {
                    for a in args {
                        let v = parse_int(a).or_else(|| labels.get(a.as_str()).map(|&x| x as i64));
                        let v = v.ok_or_else(|| AsmError {
                            line: *line,
                            msg: format!("bad .quad value `{a}`"),
                        })?;
                        data.extend_from_slice(&(v as u64).to_le_bytes());
                    }
                    if args.is_empty() {
                        data.extend_from_slice(&0u64.to_le_bytes());
                    }
                }
                "byte" => {
                    for a in args {
                        let v = parse_int(a).ok_or_else(|| AsmError {
                            line: *line,
                            msg: format!("bad .byte value `{a}`"),
                        })?;
                        data.push(v as u8);
                    }
                    if args.is_empty() {
                        data.push(0);
                    }
                }
                "space" => {
                    let n = args.first().and_then(|a| parse_int(a)).unwrap_or(0);
                    data.resize(data.len() + n as usize, 0);
                }
                "align" => {
                    let n = args.first().and_then(|a| parse_int(a)).unwrap_or(1) as usize;
                    let new_len = data.len().div_ceil(n) * n;
                    data.resize(new_len, 0);
                }
                _ => unreachable!("validated in pass 1"),
            },
        }
    }
    debug_assert_eq!(insts.len() as u64, text_words, "pass 1/2 size mismatch");

    let entry = labels
        .get("_start")
        .or_else(|| labels.get("main"))
        .copied()
        .ok_or_else(|| AsmError { line: 0, msg: "no `main` or `_start` label".into() })?;

    let heap_base = (DATA_BASE + data.len() as u64).div_ceil(4096) * 4096;
    Ok(Program::from_parts(insts.iter().map(encode).collect(), data, entry, heap_base, functions))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_minimal_program() {
        let p = assemble("main:\n halt\n").unwrap();
        assert_eq!(p.text.len(), 1);
        assert_eq!(p.entry, TEXT_BASE);
        assert_eq!(p.functions.len(), 1);
    }

    #[test]
    fn start_label_preferred_over_main() {
        let p = assemble("main:\n halt\n_start:\n halt\n").unwrap();
        assert_eq!(p.entry, TEXT_BASE + 4);
    }

    #[test]
    fn memory_and_alu_forms() {
        let p = assemble(
            "main:
                ldq $t0, 8($sp)
                stq $t0, -8($fp)
                addq $t0, 1, $t1
                subq $t0, $t1, $t2
                halt",
        )
        .unwrap();
        assert_eq!(p.text.len(), 5);
        assert_eq!(
            svf_isa::decode(p.text[0]).unwrap(),
            Inst::Mem { op: MemOp::Ldq, ra: Reg::T0, rb: Reg::SP, disp: 8 }
        );
        assert_eq!(
            svf_isa::decode(p.text[2]).unwrap(),
            Inst::Op { op: AluOp::Addq, ra: Reg::T0, rb: Operand::Lit(1), rc: Reg::T1 }
        );
    }

    #[test]
    fn branch_resolution_forwards_and_backwards() {
        let p = assemble(
            "main:
            .loop:
                addq $t0, 1, $t0
                bne $t0, .loop
                beq $t0, .done
                nop
            .done:
                halt",
        )
        .unwrap();
        match svf_isa::decode(p.text[1]).unwrap() {
            Inst::CondBr { op: CondOp::Bne, disp, .. } => assert_eq!(disp, -2),
            other => panic!("{other:?}"),
        }
        match svf_isa::decode(p.text[2]).unwrap() {
            Inst::CondBr { op: CondOp::Beq, disp, .. } => assert_eq!(disp, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn call_and_labels_as_functions() {
        let p = assemble(
            "main:
                call helper
                halt
            helper:
            .L1:
                ret",
        )
        .unwrap();
        assert_eq!(p.functions.len(), 2, "dot labels are not functions");
        match svf_isa::decode(p.text[0]).unwrap() {
            Inst::Br { op: BrOp::Bsr, ra, disp } => {
                assert_eq!(ra, Reg::RA);
                assert_eq!(disp, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn data_directives_and_la() {
        let p = assemble(
            "main:
                la $t0, table
                ldq $t1, 8($t0)
                halt
            .data
            pad: .byte 1, 2, 3
                .align 8
            table: .quad 10, 0x20, -1
            buf: .space 16",
        )
        .unwrap();
        assert_eq!(p.data.len(), 8 + 24 + 16);
        assert_eq!(&p.data[8..16], &10u64.to_le_bytes());
        assert_eq!(&p.data[16..24], &0x20u64.to_le_bytes());
        assert_eq!(&p.data[24..32], &u64::MAX.to_le_bytes());
        assert!(p.heap_base >= DATA_BASE + p.data.len() as u64);
        assert_eq!(p.heap_base % 4096, 0);
    }

    #[test]
    fn quad_of_label() {
        let p = assemble(
            "main: halt
             .data
             tbl: .quad main",
        )
        .unwrap();
        assert_eq!(&p.data[0..8], &TEXT_BASE.to_le_bytes());
    }

    #[test]
    fn li_sizes_match_between_passes() {
        // A mix of li widths before a branch checks pass-1 sizing: the branch
        // displacement is only correct if sizes agree.
        let p = assemble(
            "main:
                li $t0, 5
                li $t1, 0x12345
                li $t2, 0x123456789
                beq $zero, .done
                nop
            .done:
                halt",
        )
        .unwrap();
        let done_idx = p.text.len() - 1;
        // Find the beq and check it targets the halt.
        let beq_idx = p
            .text
            .iter()
            .position(|&w| matches!(svf_isa::decode(w), Ok(Inst::CondBr { .. })))
            .unwrap();
        match svf_isa::decode(p.text[beq_idx]).unwrap() {
            Inst::CondBr { disp, .. } => {
                assert_eq!(beq_idx as i64 + 1 + i64::from(disp), done_idx as i64);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("main:\n bogus $t0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));

        let e = assemble("main:\n beq $t0, nowhere\n").unwrap_err();
        assert!(e.msg.contains("undefined label"));

        let e = assemble("main:\n addq $t0, 300, $t0\n").unwrap_err();
        assert!(e.msg.contains("out of 0..=255"));

        let e = assemble("main:\nmain:\n halt\n").unwrap_err();
        assert!(e.msg.contains("duplicate"));

        let e = assemble(" halt\n").unwrap_err();
        assert!(e.msg.contains("no `main`"));

        let e = assemble(".data\n ldq $t0, 0($sp)\nmain: halt\n").unwrap_err();
        assert!(e.msg.contains("outside .text"));
    }

    #[test]
    fn label_then_inst_same_line() {
        let p = assemble("main: halt").unwrap();
        assert_eq!(p.text.len(), 1);
    }

    #[test]
    fn comments_are_ignored() {
        let p = assemble(
            "; leading comment
             main: halt ; trailing
             # hash comment
             // slash comment",
        )
        .unwrap();
        assert_eq!(p.text.len(), 1);
    }

    #[test]
    fn char_literals() {
        let p = assemble("main:\n li $a0, 'A'\n putchar\n halt").unwrap();
        match svf_isa::decode(p.text[0]).unwrap() {
            Inst::Lda { disp, .. } => assert_eq!(disp, 65),
            other => panic!("{other:?}"),
        }
    }
}
