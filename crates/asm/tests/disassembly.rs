//! Assembler ↔ disassembler round trips.

use proptest::prelude::*;
use svf_asm::assemble;
use svf_isa::decode;

/// A corpus program exercising every mnemonic class.
const CORPUS: &str = "
main:
    lda $sp, -64($sp)
    stq $ra, 0($sp)
    li $t0, 123456789
    la $t1, table
    ldq $t2, 0($t1)
    ldl $t3, 8($t1)
    ldbu $t4, 12($t1)
    stl $t3, 16($t1)
    stb $t4, 20($t1)
    addq $t2, $t3, $t5
    subq $t5, 1, $t5
    mulq $t5, $t0, $t5
    divq $t5, $t0, $t6
    remq $t5, $t0, $t7
    and $t6, $t7, $t6
    bis $t6, 3, $t6
    xor $t6, $t7, $t6
    sll $t6, 2, $t6
    srl $t6, 1, $t6
    sra $t6, 1, $t6
    cmpeq $t6, $t7, $v0
    cmplt $t6, $t7, $v0
    cmple $t6, $t7, $v0
    cmpult $t6, $t7, $v0
    cmpule $t6, $t7, $v0
    beq $v0, .skip
    bne $v0, .skip
    blt $v0, .skip
    ble $v0, .skip
    bge $v0, .skip
    bgt $v0, .skip
.skip:
    call helper
    mov $v0, $a0
    putint
    putchar
    ldq $ra, 0($sp)
    lda $sp, 64($sp)
    halt
helper:
    jsr $pv
    jmp $t0
    ret
    .data
table:
    .quad 1, 2, 3
";

#[test]
fn corpus_assembles_and_disassembles() {
    let p = assemble(CORPUS).expect("assembles");
    let dis = p.disassemble();
    // Every instruction word decodes (no `.word` fallbacks in the listing).
    assert!(!dis.contains(".word"), "undecodable instruction in:\n{dis}");
    // Function labels appear.
    assert!(dis.contains("main:"));
    assert!(dis.contains("helper:"));
    // Spot-check a mnemonic of each class.
    for m in ["ldq", "stb", "mulq", "cmpule", "bgt", "bsr", "jsr", "ret", "halt"] {
        assert!(dis.contains(m), "missing `{m}` in disassembly");
    }
}

#[test]
fn disassembly_reassembles_to_identical_words() {
    // The disassembly of straight-line code (no labels needed: branches are
    // displacement-form, which `Display` prints as raw displacements) must
    // decode to the same instruction sequence.
    let p = assemble(CORPUS).expect("assembles");
    for &word in &p.text {
        let inst = decode(word).expect("decodes");
        let re = svf_isa::encode(&inst);
        assert_eq!(
            decode(re).expect("re-decodes"),
            inst,
            "canonical re-encoding changed semantics"
        );
    }
}

proptest! {
    /// Random label-free arithmetic programs assemble, and the listing
    /// length matches the instruction count.
    #[test]
    fn random_alu_programs_assemble(ops in proptest::collection::vec(0u8..5, 1..40)) {
        let mut src = String::from("main:\n");
        for (i, op) in ops.iter().enumerate() {
            let mnem = ["addq", "subq", "and", "bis", "xor"][*op as usize];
            src.push_str(&format!("    {mnem} $t{}, {}, $t{}\n", i % 8, i % 200, (i + 1) % 8));
        }
        src.push_str("    halt\n");
        let p = assemble(&src).unwrap();
        prop_assert_eq!(p.text.len(), ops.len() + 1);
        let dis = p.disassemble();
        prop_assert_eq!(dis.lines().count(), ops.len() + 2); // + label + halt
    }
}
