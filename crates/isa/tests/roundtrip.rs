//! Property tests: every constructible instruction encodes/decodes losslessly,
//! and decode never panics on arbitrary words.

use proptest::prelude::*;
use svf_isa::{decode, encode, AluOp, BrOp, CondOp, Inst, JmpKind, MemOp, Operand, Reg, SysFunc};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::from_number)
}

fn arb_mem_op() -> impl Strategy<Value = MemOp> {
    prop_oneof![
        Just(MemOp::Ldq),
        Just(MemOp::Ldl),
        Just(MemOp::Ldbu),
        Just(MemOp::Stq),
        Just(MemOp::Stl),
        Just(MemOp::Stb),
    ]
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    proptest::sample::select(AluOp::all().to_vec())
}

fn arb_cond_op() -> impl Strategy<Value = CondOp> {
    prop_oneof![
        Just(CondOp::Beq),
        Just(CondOp::Bne),
        Just(CondOp::Blt),
        Just(CondOp::Ble),
        Just(CondOp::Bge),
        Just(CondOp::Bgt),
    ]
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    let disp21 = -(1i32 << 20)..(1i32 << 20);
    prop_oneof![
        prop_oneof![Just(SysFunc::Halt), Just(SysFunc::PutInt), Just(SysFunc::PutChar)]
            .prop_map(|func| Inst::Sys { func }),
        (arb_mem_op(), arb_reg(), arb_reg(), any::<i16>())
            .prop_map(|(op, ra, rb, disp)| Inst::Mem { op, ra, rb, disp }),
        (any::<bool>(), arb_reg(), arb_reg(), any::<i16>())
            .prop_map(|(high, ra, rb, disp)| Inst::Lda { high, ra, rb, disp }),
        (prop_oneof![Just(BrOp::Br), Just(BrOp::Bsr)], arb_reg(), disp21.clone())
            .prop_map(|(op, ra, disp)| Inst::Br { op, ra, disp }),
        (arb_cond_op(), arb_reg(), disp21)
            .prop_map(|(op, ra, disp)| Inst::CondBr { op, ra, disp }),
        (
            arb_alu_op(),
            arb_reg(),
            prop_oneof![arb_reg().prop_map(Operand::Reg), any::<u8>().prop_map(Operand::Lit)],
            arb_reg()
        )
            .prop_map(|(op, ra, rb, rc)| Inst::Op { op, ra, rb, rc }),
        (
            prop_oneof![Just(JmpKind::Jmp), Just(JmpKind::Jsr), Just(JmpKind::Ret)],
            arb_reg(),
            arb_reg()
        )
            .prop_map(|(kind, ra, rb)| Inst::Jmp { kind, ra, rb }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(inst in arb_inst()) {
        let word = encode(&inst);
        prop_assert_eq!(decode(word).unwrap(), inst);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = decode(word);
    }

    #[test]
    fn decoded_reencodes_to_same_word(word in any::<u32>()) {
        if let Ok(inst) = decode(word) {
            // Jump hint bits [13:0] and unused operate bits are not part of
            // the decoded representation, so re-encoding may canonicalize;
            // a second decode must then be a fixed point.
            let canon = encode(&inst);
            prop_assert_eq!(decode(canon).unwrap(), inst);
        }
    }

    #[test]
    fn display_never_empty(inst in arb_inst()) {
        prop_assert!(!inst.to_string().is_empty());
    }

    #[test]
    fn srcs_never_contain_zero_or_dups(inst in arb_inst()) {
        let srcs = inst.srcs();
        prop_assert!(!srcs.contains(&Reg::ZERO));
        let mut dedup = srcs.clone();
        dedup.dedup();
        prop_assert_eq!(srcs.len(), dedup.len());
    }
}
