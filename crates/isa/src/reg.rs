//! Register names and software conventions.

use std::fmt;

/// One of the 32 general-purpose 64-bit integer registers.
///
/// The software conventions follow the Compaq Alpha calling standard, which
/// is what the SVF paper assumes:
///
/// | register | name | role |
/// |---|---|---|
/// | r0 | `$v0` | function return value |
/// | r1–r8 | `$t0`–`$t7` | caller-saved temporaries |
/// | r9–r14 | `$s0`–`$s5` | callee-saved |
/// | r15 | `$fp` | frame pointer |
/// | r16–r21 | `$a0`–`$a5` | argument registers |
/// | r22–r25 | `$t8`–`$t11` | caller-saved temporaries |
/// | r26 | `$ra` | return address |
/// | r27 | `$pv` | procedure value / scratch |
/// | r28 | `$at` | assembler temporary |
/// | r29 | `$gp` | global pointer / scratch |
/// | r30 | `$sp` | **stack pointer** |
/// | r31 | `$zero` | hardwired zero |
///
/// # Example
///
/// ```
/// use svf_isa::Reg;
/// assert_eq!(Reg::SP.number(), 30);
/// assert_eq!(Reg::from_number(31), Reg::ZERO);
/// assert_eq!(Reg::SP.to_string(), "$sp");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Function return value register (r0).
    pub const V0: Reg = Reg(0);
    /// Caller-saved temporary r1.
    pub const T0: Reg = Reg(1);
    /// Caller-saved temporary r2.
    pub const T1: Reg = Reg(2);
    /// Caller-saved temporary r3.
    pub const T2: Reg = Reg(3);
    /// Caller-saved temporary r4.
    pub const T3: Reg = Reg(4);
    /// Caller-saved temporary r5.
    pub const T4: Reg = Reg(5);
    /// Caller-saved temporary r6.
    pub const T5: Reg = Reg(6);
    /// Caller-saved temporary r7.
    pub const T6: Reg = Reg(7);
    /// Caller-saved temporary r8.
    pub const T7: Reg = Reg(8);
    /// Callee-saved register r9.
    pub const S0: Reg = Reg(9);
    /// Callee-saved register r10.
    pub const S1: Reg = Reg(10);
    /// Callee-saved register r11.
    pub const S2: Reg = Reg(11);
    /// Callee-saved register r12.
    pub const S3: Reg = Reg(12);
    /// Callee-saved register r13.
    pub const S4: Reg = Reg(13);
    /// Callee-saved register r14.
    pub const S5: Reg = Reg(14);
    /// Frame pointer (r15).
    pub const FP: Reg = Reg(15);
    /// First argument register (r16).
    pub const A0: Reg = Reg(16);
    /// Second argument register (r17).
    pub const A1: Reg = Reg(17);
    /// Third argument register (r18).
    pub const A2: Reg = Reg(18);
    /// Fourth argument register (r19).
    pub const A3: Reg = Reg(19);
    /// Fifth argument register (r20).
    pub const A4: Reg = Reg(20);
    /// Sixth argument register (r21).
    pub const A5: Reg = Reg(21);
    /// Caller-saved temporary r22.
    pub const T8: Reg = Reg(22);
    /// Caller-saved temporary r23.
    pub const T9: Reg = Reg(23);
    /// Caller-saved temporary r24.
    pub const T10: Reg = Reg(24);
    /// Caller-saved temporary r25.
    pub const T11: Reg = Reg(25);
    /// Return-address register (r26).
    pub const RA: Reg = Reg(26);
    /// Procedure value / scratch register (r27).
    pub const PV: Reg = Reg(27);
    /// Assembler temporary (r28).
    pub const AT: Reg = Reg(28);
    /// Global pointer / scratch register (r29).
    pub const GP: Reg = Reg(29);
    /// Stack pointer (r30). The register the SVF watches.
    pub const SP: Reg = Reg(30);
    /// Hardwired zero register (r31). Writes are discarded.
    pub const ZERO: Reg = Reg(31);

    /// Builds a register from its architectural number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[must_use]
    pub fn from_number(n: u8) -> Reg {
        assert!(n < 32, "register number out of range: {n}");
        Reg(n)
    }

    /// The architectural register number (0–31).
    #[must_use]
    pub fn number(self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired zero register.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self == Reg::ZERO
    }

    /// Whether this is the stack pointer.
    #[must_use]
    pub fn is_sp(self) -> bool {
        self == Reg::SP
    }

    /// Whether this is the frame pointer.
    #[must_use]
    pub fn is_fp(self) -> bool {
        self == Reg::FP
    }

    /// Whether the register is preserved across calls under the Alpha
    /// calling convention used by the MiniC compiler.
    #[must_use]
    pub fn is_callee_saved(self) -> bool {
        matches!(self.0, 9..=15 | 30)
    }

    /// Iterates over all 32 registers in architectural order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }

    /// The conventional assembly name (`$sp`, `$t0`, …).
    #[must_use]
    pub fn name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "$v0", "$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7", "$s0", "$s1", "$s2",
            "$s3", "$s4", "$s5", "$fp", "$a0", "$a1", "$a2", "$a3", "$a4", "$a5", "$t8", "$t9",
            "$t10", "$t11", "$ra", "$pv", "$at", "$gp", "$sp", "$zero",
        ];
        NAMES[self.0 as usize]
    }

    /// Parses a register from either its conventional name (`$sp`) or its
    /// numeric form (`$r30` / `r30`), returning `None` on anything else.
    #[must_use]
    pub fn parse(s: &str) -> Option<Reg> {
        let body = s.strip_prefix('$').unwrap_or(s);
        for r in Reg::all() {
            if r.name().strip_prefix('$') == Some(body) {
                return Some(r);
            }
        }
        let num = body.strip_prefix('r')?;
        let n: u8 = num.parse().ok()?;
        if n < 32 {
            Some(Reg(n))
        } else {
            None
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_round_trip() {
        for r in Reg::all() {
            assert_eq!(Reg::from_number(r.number()), r);
        }
    }

    #[test]
    fn conventions() {
        assert_eq!(Reg::SP.number(), 30);
        assert_eq!(Reg::FP.number(), 15);
        assert_eq!(Reg::RA.number(), 26);
        assert_eq!(Reg::ZERO.number(), 31);
        assert!(Reg::SP.is_sp());
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::T0.is_callee_saved());
        assert!(Reg::S0.is_callee_saved());
        assert!(Reg::SP.is_callee_saved());
    }

    #[test]
    fn parse_names_and_numbers() {
        assert_eq!(Reg::parse("$sp"), Some(Reg::SP));
        assert_eq!(Reg::parse("sp"), Some(Reg::SP));
        assert_eq!(Reg::parse("$r30"), Some(Reg::SP));
        assert_eq!(Reg::parse("r0"), Some(Reg::V0));
        assert_eq!(Reg::parse("$zero"), Some(Reg::ZERO));
        assert_eq!(Reg::parse("r32"), None);
        assert_eq!(Reg::parse("bogus"), None);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Reg::A3.to_string(), "$a3");
        assert_eq!(format!("{}", Reg::ZERO), "$zero");
    }

    #[test]
    #[should_panic(expected = "register number out of range")]
    fn from_number_rejects_out_of_range() {
        let _ = Reg::from_number(32);
    }
}
