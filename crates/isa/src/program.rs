//! Linked program images.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::encoding::decode;
use crate::inst::Inst;
use crate::layout::{DATA_BASE, TEXT_BASE};

/// A symbol-table entry: a label and the address it resolved to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// The label name.
    pub name: String,
    /// The resolved address.
    pub addr: u64,
}

/// A linked binary image: code, initialized data, and layout metadata.
///
/// Produced by the `svf-asm` assembler (usually from `svf-cc` output) and
/// consumed by the `svf-emu` functional emulator.
#[derive(Debug, Default)]
pub struct Program {
    /// Encoded instruction words, laid out from [`TEXT_BASE`].
    pub text: Vec<u32>,
    /// Initialized data bytes, laid out from [`DATA_BASE`].
    pub data: Vec<u8>,
    /// Entry-point address.
    pub entry: u64,
    /// First address past the initialized/zeroed data: the heap starts here.
    pub heap_base: u64,
    /// Function symbols (sorted by address) for profiling and disassembly.
    pub functions: BTreeMap<u64, String>,
    /// Lazily-initialized shared decode of `text` — see [`Program::decoded`].
    decoded: OnceLock<Arc<[Inst]>>,
}

impl Clone for Program {
    fn clone(&self) -> Program {
        // The decode cache is not carried over: a clone's pub fields may
        // still be mutated (the assembler builds images incrementally), and
        // the cache is only valid for frozen text.
        Program {
            text: self.text.clone(),
            data: self.data.clone(),
            entry: self.entry,
            heap_base: self.heap_base,
            functions: self.functions.clone(),
            decoded: OnceLock::new(),
        }
    }
}

impl PartialEq for Program {
    fn eq(&self, other: &Program) -> bool {
        self.text == other.text
            && self.data == other.data
            && self.entry == other.entry
            && self.heap_base == other.heap_base
            && self.functions == other.functions
    }
}

impl Program {
    /// Creates an empty program with entry at [`TEXT_BASE`].
    #[must_use]
    pub fn new() -> Program {
        Program { entry: TEXT_BASE, heap_base: DATA_BASE, ..Program::default() }
    }

    /// Builds a linked image from its parts (the assembler's exit point).
    #[must_use]
    pub fn from_parts(
        text: Vec<u32>,
        data: Vec<u8>,
        entry: u64,
        heap_base: u64,
        functions: BTreeMap<u64, String>,
    ) -> Program {
        Program { text, data, entry, heap_base, functions, decoded: OnceLock::new() }
    }

    /// The decoded text segment: decoded **once per program image** on first
    /// use and shared (`Arc`) by every consumer — the functional emulator,
    /// the pipeline front-end, the disassembler-driven tools. Index `i`
    /// holds the instruction at `TEXT_BASE + 4*i`.
    ///
    /// The text must be frozen before the first call; mutating `text`
    /// afterwards leaves the cache stale (assembled images are never
    /// mutated).
    ///
    /// # Panics
    ///
    /// Panics if the text contains an undecodable word (assembled programs
    /// never do).
    #[must_use]
    pub fn decoded(&self) -> Arc<[Inst]> {
        Arc::clone(self.decoded.get_or_init(|| {
            self.text
                .iter()
                .enumerate()
                .map(|(i, &w)| {
                    decode(w)
                        .unwrap_or_else(|e| panic!("undecodable word at text index {i}: {e}"))
                })
                .collect()
        }))
    }

    /// Base address of the text segment.
    #[must_use]
    pub fn text_base(&self) -> u64 {
        TEXT_BASE
    }

    /// Base address of the data segment.
    #[must_use]
    pub fn data_base(&self) -> u64 {
        DATA_BASE
    }

    /// Address one past the last instruction.
    #[must_use]
    pub fn text_end(&self) -> u64 {
        TEXT_BASE + 4 * self.text.len() as u64
    }

    /// Fetches the instruction word at `pc`, if it lies in the text segment.
    #[must_use]
    pub fn fetch(&self, pc: u64) -> Option<u32> {
        if pc < TEXT_BASE || !pc.is_multiple_of(4) {
            return None;
        }
        self.text.get(((pc - TEXT_BASE) / 4) as usize).copied()
    }

    /// The name of the function containing `pc`, if known.
    #[must_use]
    pub fn function_at(&self, pc: u64) -> Option<&str> {
        self.functions.range(..=pc).next_back().map(|(_, name)| name.as_str())
    }

    /// Disassembles the whole text segment, one instruction per line, for
    /// debugging and golden tests.
    #[must_use]
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (i, &word) in self.text.iter().enumerate() {
            let addr = TEXT_BASE + 4 * i as u64;
            if let Some(name) = self.functions.get(&addr) {
                out.push_str(&format!("{name}:\n"));
            }
            match decode(word) {
                Ok(inst) => out.push_str(&format!("  {addr:#010x}: {inst}\n")),
                Err(e) => out.push_str(&format!("  {addr:#010x}: .word {word:#010x} ; {e}\n")),
            }
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Program {{ {} instructions, {} data bytes, {} functions }}",
            self.text.len(),
            self.data.len(),
            self.functions.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::encode;
    use crate::inst::{Inst, SysFunc};

    #[test]
    fn fetch_in_and_out_of_range() {
        let mut p = Program::new();
        p.text.push(encode(&Inst::Sys { func: SysFunc::Halt }));
        assert!(p.fetch(TEXT_BASE).is_some());
        assert!(p.fetch(TEXT_BASE + 4).is_none());
        assert!(p.fetch(TEXT_BASE + 1).is_none(), "misaligned");
        assert!(p.fetch(0).is_none());
        assert_eq!(p.text_end(), TEXT_BASE + 4);
    }

    #[test]
    fn function_lookup() {
        let mut p = Program::new();
        p.functions.insert(TEXT_BASE, "main".to_string());
        p.functions.insert(TEXT_BASE + 40, "helper".to_string());
        assert_eq!(p.function_at(TEXT_BASE), Some("main"));
        assert_eq!(p.function_at(TEXT_BASE + 36), Some("main"));
        assert_eq!(p.function_at(TEXT_BASE + 40), Some("helper"));
        assert_eq!(p.function_at(TEXT_BASE + 400), Some("helper"));
        assert_eq!(p.function_at(0), None);
    }

    #[test]
    fn disassembly_contains_labels() {
        let mut p = Program::new();
        p.functions.insert(TEXT_BASE, "main".to_string());
        p.text.push(encode(&Inst::Sys { func: SysFunc::Halt }));
        let dis = p.disassemble();
        assert!(dis.contains("main:"));
        assert!(dis.contains("halt"));
    }

    #[test]
    fn display_nonempty() {
        assert!(!Program::new().to_string().is_empty());
    }

    #[test]
    fn decoded_is_shared_and_cleared_on_clone() {
        let mut p = Program::new();
        p.text.push(encode(&Inst::Sys { func: SysFunc::Halt }));
        let d1 = p.decoded();
        let d2 = p.decoded();
        assert!(Arc::ptr_eq(&d1, &d2), "decoded once per image");
        assert_eq!(&*d1, &[Inst::Sys { func: SysFunc::Halt }]);
        let c = p.clone();
        assert_eq!(c, p, "decode cache is invisible to equality");
        assert!(!Arc::ptr_eq(&d1, &c.decoded()), "clone re-decodes");
    }
}
