//! Binary instruction encoding and decoding.
//!
//! All instructions are 32 bits. Formats (bit ranges inclusive):
//!
//! ```text
//! sys:     [31:26]=0x00  [15:0]=func
//! memory:  [31:26]=op    [25:21]=ra [20:16]=rb [15:0]=disp16
//! branch:  [31:26]=op    [25:21]=ra [20:0]=disp21 (in instructions)
//! operate: [31:26]=0x10  [25:21]=ra [20:13]=lit [12]=litflag
//!                        [20:16]=rb (when litflag=0) [11:5]=func [4:0]=rc
//! jump:    [31:26]=0x1A  [25:21]=ra [20:16]=rb [15:14]=kind
//! ```

use std::error::Error;
use std::fmt;

use crate::inst::{AluOp, BrOp, CondOp, Inst, JmpKind, MemOp, Operand, SysFunc};
use crate::reg::Reg;

const OP_SYS: u32 = 0x00;
const OP_LDA: u32 = 0x08;
const OP_LDAH: u32 = 0x09;
const OP_LDBU: u32 = 0x0A;
const OP_STB: u32 = 0x0E;
const OP_OPER: u32 = 0x10;
const OP_JMP: u32 = 0x1A;
const OP_LDL: u32 = 0x28;
const OP_LDQ: u32 = 0x29;
const OP_STL: u32 = 0x2C;
const OP_STQ: u32 = 0x2D;
const OP_BR: u32 = 0x30;
const OP_BSR: u32 = 0x34;
const OP_BEQ: u32 = 0x39;
const OP_BLT: u32 = 0x3A;
const OP_BLE: u32 = 0x3B;
const OP_BNE: u32 = 0x3D;
const OP_BGE: u32 = 0x3E;
const OP_BGT: u32 = 0x3F;

/// Error returned by [`decode`] for malformed instruction words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The 6-bit major opcode is not assigned.
    UnknownOpcode(u8),
    /// The operate-format function code is not assigned.
    UnknownAluFunc(u8),
    /// The jump-format kind field is not assigned.
    UnknownJumpKind(u8),
    /// The system-call function code is not assigned.
    UnknownSysFunc(u16),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::UnknownAluFunc(fc) => write!(f, "unknown ALU function {fc:#04x}"),
            DecodeError::UnknownJumpKind(k) => write!(f, "unknown jump kind {k}"),
            DecodeError::UnknownSysFunc(c) => write!(f, "unknown sys function {c}"),
        }
    }
}

impl Error for DecodeError {}

fn reg_at(word: u32, lsb: u32) -> Reg {
    Reg::from_number(((word >> lsb) & 0x1F) as u8)
}

fn sign_extend_21(v: u32) -> i32 {
    ((v << 11) as i32) >> 11
}

/// Encodes a decoded instruction into its 32-bit binary form.
///
/// # Panics
///
/// Panics if a branch displacement does not fit in 21 signed bits. The
/// assembler checks this before calling.
#[must_use]
pub fn encode(inst: &Inst) -> u32 {
    fn mem_like(op: u32, ra: Reg, rb: Reg, disp: i16) -> u32 {
        (op << 26)
            | (u32::from(ra.number()) << 21)
            | (u32::from(rb.number()) << 16)
            | u32::from(disp as u16)
    }
    fn branch_like(op: u32, ra: Reg, disp: i32) -> u32 {
        assert!(
            (-(1 << 20)..(1 << 20)).contains(&disp),
            "branch displacement {disp} out of 21-bit range"
        );
        (op << 26) | (u32::from(ra.number()) << 21) | ((disp as u32) & 0x1F_FFFF)
    }
    match *inst {
        Inst::Sys { func } => (OP_SYS << 26) | u32::from(func.code()),
        Inst::Mem { op, ra, rb, disp } => {
            let opc = match op {
                MemOp::Ldq => OP_LDQ,
                MemOp::Ldl => OP_LDL,
                MemOp::Ldbu => OP_LDBU,
                MemOp::Stq => OP_STQ,
                MemOp::Stl => OP_STL,
                MemOp::Stb => OP_STB,
            };
            mem_like(opc, ra, rb, disp)
        }
        Inst::Lda { high, ra, rb, disp } => {
            mem_like(if high { OP_LDAH } else { OP_LDA }, ra, rb, disp)
        }
        Inst::Br { op, ra, disp } => {
            branch_like(if op == BrOp::Br { OP_BR } else { OP_BSR }, ra, disp)
        }
        Inst::CondBr { op, ra, disp } => {
            let opc = match op {
                CondOp::Beq => OP_BEQ,
                CondOp::Bne => OP_BNE,
                CondOp::Blt => OP_BLT,
                CondOp::Ble => OP_BLE,
                CondOp::Bge => OP_BGE,
                CondOp::Bgt => OP_BGT,
            };
            branch_like(opc, ra, disp)
        }
        Inst::Op { op, ra, rb, rc } => {
            let mut w = (OP_OPER << 26)
                | (u32::from(ra.number()) << 21)
                | (u32::from(op.func()) << 5)
                | u32::from(rc.number());
            match rb {
                Operand::Reg(r) => w |= u32::from(r.number()) << 16,
                Operand::Lit(l) => w |= (u32::from(l) << 13) | (1 << 12),
            }
            w
        }
        Inst::Jmp { kind, ra, rb } => {
            let k = match kind {
                JmpKind::Jmp => 0,
                JmpKind::Jsr => 1,
                JmpKind::Ret => 2,
            };
            (OP_JMP << 26)
                | (u32::from(ra.number()) << 21)
                | (u32::from(rb.number()) << 16)
                | (k << 14)
        }
    }
}

/// Decodes a 32-bit instruction word.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the opcode or a function field is unassigned.
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    let opcode = word >> 26;
    let ra = reg_at(word, 21);
    let rb = reg_at(word, 16);
    let disp16 = word as u16 as i16;
    let mem = |op: MemOp| Inst::Mem { op, ra, rb, disp: disp16 };
    let cond = |op: CondOp| Inst::CondBr { op, ra, disp: sign_extend_21(word & 0x1F_FFFF) };
    Ok(match opcode {
        OP_SYS => Inst::Sys {
            func: SysFunc::from_code(word as u16)
                .ok_or(DecodeError::UnknownSysFunc(word as u16))?,
        },
        OP_LDA => Inst::Lda { high: false, ra, rb, disp: disp16 },
        OP_LDAH => Inst::Lda { high: true, ra, rb, disp: disp16 },
        OP_LDBU => mem(MemOp::Ldbu),
        OP_STB => mem(MemOp::Stb),
        OP_LDL => mem(MemOp::Ldl),
        OP_LDQ => mem(MemOp::Ldq),
        OP_STL => mem(MemOp::Stl),
        OP_STQ => mem(MemOp::Stq),
        OP_BR => Inst::Br { op: BrOp::Br, ra, disp: sign_extend_21(word & 0x1F_FFFF) },
        OP_BSR => Inst::Br { op: BrOp::Bsr, ra, disp: sign_extend_21(word & 0x1F_FFFF) },
        OP_BEQ => cond(CondOp::Beq),
        OP_BNE => cond(CondOp::Bne),
        OP_BLT => cond(CondOp::Blt),
        OP_BLE => cond(CondOp::Ble),
        OP_BGE => cond(CondOp::Bge),
        OP_BGT => cond(CondOp::Bgt),
        OP_OPER => {
            let func = ((word >> 5) & 0x7F) as u8;
            let op = AluOp::from_func(func).ok_or(DecodeError::UnknownAluFunc(func))?;
            let rb = if word & (1 << 12) != 0 {
                Operand::Lit(((word >> 13) & 0xFF) as u8)
            } else {
                Operand::Reg(rb)
            };
            let rc = reg_at(word, 0);
            Inst::Op { op, ra, rb, rc }
        }
        OP_JMP => {
            let kind = match (word >> 14) & 0x3 {
                0 => JmpKind::Jmp,
                1 => JmpKind::Jsr,
                2 => JmpKind::Ret,
                k => return Err(DecodeError::UnknownJumpKind(k as u8)),
            };
            Inst::Jmp { kind, ra, rb }
        }
        op => return Err(DecodeError::UnknownOpcode(op as u8)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Inst) {
        let w = encode(&i);
        assert_eq!(decode(w).expect("decodes"), i, "word {w:#010x}");
    }

    #[test]
    fn roundtrip_representatives() {
        roundtrip(Inst::Sys { func: SysFunc::Halt });
        roundtrip(Inst::Sys { func: SysFunc::PutInt });
        roundtrip(Inst::Mem { op: MemOp::Ldq, ra: Reg::T0, rb: Reg::SP, disp: -32768 });
        roundtrip(Inst::Mem { op: MemOp::Stb, ra: Reg::A0, rb: Reg::T3, disp: 32767 });
        roundtrip(Inst::Lda { high: false, ra: Reg::SP, rb: Reg::SP, disp: -64 });
        roundtrip(Inst::Lda { high: true, ra: Reg::GP, rb: Reg::ZERO, disp: 0x1000 });
        roundtrip(Inst::Br { op: BrOp::Bsr, ra: Reg::RA, disp: -(1 << 20) });
        roundtrip(Inst::Br { op: BrOp::Br, ra: Reg::ZERO, disp: (1 << 20) - 1 });
        roundtrip(Inst::CondBr { op: CondOp::Bne, ra: Reg::V0, disp: -1 });
        roundtrip(Inst::Op { op: AluOp::Addq, ra: Reg::A0, rb: Operand::Lit(255), rc: Reg::V0 });
        roundtrip(Inst::Op { op: AluOp::Sra, ra: Reg::T7, rb: Operand::Reg(Reg::T8), rc: Reg::T9 });
        roundtrip(Inst::Jmp { kind: JmpKind::Ret, ra: Reg::ZERO, rb: Reg::RA });
        roundtrip(Inst::Jmp { kind: JmpKind::Jsr, ra: Reg::RA, rb: Reg::PV });
    }

    #[test]
    fn roundtrip_all_alu_ops() {
        for &op in AluOp::all() {
            roundtrip(Inst::Op { op, ra: Reg::A1, rb: Operand::Reg(Reg::A2), rc: Reg::T0 });
            roundtrip(Inst::Op { op, ra: Reg::A1, rb: Operand::Lit(7), rc: Reg::T0 });
            assert_eq!(AluOp::from_func(op.func()), Some(op));
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert_eq!(decode(0x3F00_0000 & (0x07 << 26)), Err(DecodeError::UnknownOpcode(0x07)));
        assert!(matches!(decode(0xFFFF_FFFF), Ok(_) | Err(_))); // 0x3F is BGT: must decode
        assert_eq!(decode(0x04 << 26), Err(DecodeError::UnknownOpcode(0x04)));
    }

    #[test]
    fn unknown_alu_func_rejected() {
        let w = (OP_OPER << 26) | (0x7F << 5);
        assert_eq!(decode(w), Err(DecodeError::UnknownAluFunc(0x7F)));
    }

    #[test]
    fn unknown_sys_func_rejected() {
        assert_eq!(decode(0x0000_FFFF), Err(DecodeError::UnknownSysFunc(0xFFFF)));
    }

    #[test]
    fn unknown_jump_kind_rejected() {
        let w = (OP_JMP << 26) | (3 << 14);
        assert_eq!(decode(w), Err(DecodeError::UnknownJumpKind(3)));
    }

    #[test]
    #[should_panic(expected = "out of 21-bit range")]
    fn branch_overflow_panics() {
        let _ = encode(&Inst::Br { op: BrOp::Br, ra: Reg::ZERO, disp: 1 << 20 });
    }

    #[test]
    fn branch_displacement_sign_extension() {
        let w = encode(&Inst::CondBr { op: CondOp::Beq, ra: Reg::V0, disp: -1024 });
        match decode(w).unwrap() {
            Inst::CondBr { disp, .. } => assert_eq!(disp, -1024),
            other => panic!("wrong decode: {other:?}"),
        }
    }
}
