//! Decoded instruction representation and classification helpers.

use std::fmt;

use crate::reg::Reg;

/// Memory (load/store) operations. All use `disp16(rb)` addressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// 64-bit load (`ldq ra, disp(rb)`).
    Ldq,
    /// 32-bit sign-extending load (`ldl`).
    Ldl,
    /// 8-bit zero-extending load (`ldbu`).
    Ldbu,
    /// 64-bit store (`stq ra, disp(rb)`).
    Stq,
    /// 32-bit store (`stl`).
    Stl,
    /// 8-bit store (`stb`).
    Stb,
}

impl MemOp {
    /// Whether this operation reads memory.
    #[must_use]
    pub fn is_load(self) -> bool {
        matches!(self, MemOp::Ldq | MemOp::Ldl | MemOp::Ldbu)
    }

    /// Whether this operation writes memory.
    #[must_use]
    pub fn is_store(self) -> bool {
        !self.is_load()
    }

    /// The access size in bytes.
    #[must_use]
    pub fn size(self) -> u64 {
        match self {
            MemOp::Ldq | MemOp::Stq => 8,
            MemOp::Ldl | MemOp::Stl => 4,
            MemOp::Ldbu | MemOp::Stb => 1,
        }
    }

    /// The assembler mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            MemOp::Ldq => "ldq",
            MemOp::Ldl => "ldl",
            MemOp::Ldbu => "ldbu",
            MemOp::Stq => "stq",
            MemOp::Stl => "stl",
            MemOp::Stb => "stb",
        }
    }
}

/// Integer ALU operations for the operate format (`op ra, rb_or_lit, rc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `rc = ra + rb`
    Addq,
    /// `rc = ra - rb`
    Subq,
    /// `rc = ra * rb` (low 64 bits)
    Mulq,
    /// Signed division; division by zero yields 0, `i64::MIN / -1` yields
    /// `i64::MIN`. (The real Alpha had no integer divide; we add one so the
    /// MiniC compiler does not need a software divide routine. Latency is
    /// modelled as a long-latency FU op.)
    Divq,
    /// Signed remainder with the same trap-free convention as [`AluOp::Divq`]
    /// (`x % 0 == x`).
    Remq,
    /// Bitwise AND.
    And,
    /// Bitwise OR (Alpha calls this `bis`).
    Bis,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (amount taken mod 64).
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// `rc = (ra == rb) as u64`
    Cmpeq,
    /// Signed `rc = (ra < rb) as u64`
    Cmplt,
    /// Signed `rc = (ra <= rb) as u64`
    Cmple,
    /// Unsigned `rc = (ra < rb) as u64`
    Cmpult,
    /// Unsigned `rc = (ra <= rb) as u64`
    Cmpule,
}

impl AluOp {
    /// The function code used in the binary encoding.
    #[must_use]
    pub fn func(self) -> u8 {
        match self {
            AluOp::Addq => 0x00,
            AluOp::Subq => 0x01,
            AluOp::Mulq => 0x02,
            AluOp::Divq => 0x03,
            AluOp::Remq => 0x04,
            AluOp::And => 0x08,
            AluOp::Bis => 0x09,
            AluOp::Xor => 0x0A,
            AluOp::Sll => 0x10,
            AluOp::Srl => 0x11,
            AluOp::Sra => 0x12,
            AluOp::Cmpeq => 0x20,
            AluOp::Cmplt => 0x21,
            AluOp::Cmple => 0x22,
            AluOp::Cmpult => 0x23,
            AluOp::Cmpule => 0x24,
        }
    }

    /// Inverse of [`AluOp::func`].
    #[must_use]
    pub fn from_func(f: u8) -> Option<AluOp> {
        Some(match f {
            0x00 => AluOp::Addq,
            0x01 => AluOp::Subq,
            0x02 => AluOp::Mulq,
            0x03 => AluOp::Divq,
            0x04 => AluOp::Remq,
            0x08 => AluOp::And,
            0x09 => AluOp::Bis,
            0x0A => AluOp::Xor,
            0x10 => AluOp::Sll,
            0x11 => AluOp::Srl,
            0x12 => AluOp::Sra,
            0x20 => AluOp::Cmpeq,
            0x21 => AluOp::Cmplt,
            0x22 => AluOp::Cmple,
            0x23 => AluOp::Cmpult,
            0x24 => AluOp::Cmpule,
            _ => return None,
        })
    }

    /// All defined ALU operations.
    #[must_use]
    pub fn all() -> &'static [AluOp] {
        &[
            AluOp::Addq,
            AluOp::Subq,
            AluOp::Mulq,
            AluOp::Divq,
            AluOp::Remq,
            AluOp::And,
            AluOp::Bis,
            AluOp::Xor,
            AluOp::Sll,
            AluOp::Srl,
            AluOp::Sra,
            AluOp::Cmpeq,
            AluOp::Cmplt,
            AluOp::Cmple,
            AluOp::Cmpult,
            AluOp::Cmpule,
        ]
    }

    /// Applies the operation to two 64-bit values.
    #[must_use]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        let (sa, sb) = (a as i64, b as i64);
        match self {
            AluOp::Addq => a.wrapping_add(b),
            AluOp::Subq => a.wrapping_sub(b),
            AluOp::Mulq => a.wrapping_mul(b),
            AluOp::Divq => {
                if sb == 0 {
                    0
                } else {
                    sa.wrapping_div(sb) as u64
                }
            }
            AluOp::Remq => {
                if sb == 0 {
                    a
                } else {
                    sa.wrapping_rem(sb) as u64
                }
            }
            AluOp::And => a & b,
            AluOp::Bis => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(b as u32 & 63),
            AluOp::Srl => a.wrapping_shr(b as u32 & 63),
            AluOp::Sra => (sa.wrapping_shr(b as u32 & 63)) as u64,
            AluOp::Cmpeq => u64::from(a == b),
            AluOp::Cmplt => u64::from(sa < sb),
            AluOp::Cmple => u64::from(sa <= sb),
            AluOp::Cmpult => u64::from(a < b),
            AluOp::Cmpule => u64::from(a <= b),
        }
    }

    /// Whether this op runs on the (scarce, long-latency) multiplier unit.
    #[must_use]
    pub fn is_mul_class(self) -> bool {
        matches!(self, AluOp::Mulq | AluOp::Divq | AluOp::Remq)
    }

    /// The assembler mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Addq => "addq",
            AluOp::Subq => "subq",
            AluOp::Mulq => "mulq",
            AluOp::Divq => "divq",
            AluOp::Remq => "remq",
            AluOp::And => "and",
            AluOp::Bis => "bis",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Cmpeq => "cmpeq",
            AluOp::Cmplt => "cmplt",
            AluOp::Cmple => "cmple",
            AluOp::Cmpult => "cmpult",
            AluOp::Cmpule => "cmpule",
        }
    }
}

/// Conditional branch conditions. All test `ra` against zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CondOp {
    /// Branch if `ra == 0`.
    Beq,
    /// Branch if `ra != 0`.
    Bne,
    /// Branch if `ra < 0` (signed).
    Blt,
    /// Branch if `ra <= 0` (signed).
    Ble,
    /// Branch if `ra >= 0` (signed).
    Bge,
    /// Branch if `ra > 0` (signed).
    Bgt,
}

impl CondOp {
    /// Evaluates the branch condition against a register value.
    #[must_use]
    pub fn taken(self, v: u64) -> bool {
        let s = v as i64;
        match self {
            CondOp::Beq => s == 0,
            CondOp::Bne => s != 0,
            CondOp::Blt => s < 0,
            CondOp::Ble => s <= 0,
            CondOp::Bge => s >= 0,
            CondOp::Bgt => s > 0,
        }
    }

    /// The assembler mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            CondOp::Beq => "beq",
            CondOp::Bne => "bne",
            CondOp::Blt => "blt",
            CondOp::Ble => "ble",
            CondOp::Bge => "bge",
            CondOp::Bgt => "bgt",
        }
    }
}

/// Unconditional PC-relative branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BrOp {
    /// Plain branch; `ra` receives the return address (use `$zero` to discard).
    Br,
    /// Branch-to-subroutine: identical semantics, but hints "call" to the
    /// return-address-stack predictor.
    Bsr,
}

/// Register-indirect jumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JmpKind {
    /// Indirect jump.
    Jmp,
    /// Indirect call (pushes onto the RAS predictor).
    Jsr,
    /// Return (pops the RAS predictor).
    Ret,
}

impl JmpKind {
    /// The assembler mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            JmpKind::Jmp => "jmp",
            JmpKind::Jsr => "jsr",
            JmpKind::Ret => "ret",
        }
    }
}

/// System-call functions (opcode 0 instructions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SysFunc {
    /// Stop the machine.
    Halt,
    /// Print `$a0` as a signed decimal integer followed by a newline.
    PutInt,
    /// Print the low byte of `$a0` as a character.
    PutChar,
}

impl SysFunc {
    /// Encoding function code.
    #[must_use]
    pub fn code(self) -> u16 {
        match self {
            SysFunc::Halt => 0,
            SysFunc::PutInt => 1,
            SysFunc::PutChar => 2,
        }
    }

    /// Inverse of [`SysFunc::code`].
    #[must_use]
    pub fn from_code(c: u16) -> Option<SysFunc> {
        Some(match c {
            0 => SysFunc::Halt,
            1 => SysFunc::PutInt,
            2 => SysFunc::PutChar,
            _ => return None,
        })
    }
}

/// Second operand of an operate-format instruction: a register or an 8-bit
/// unsigned literal (as on the Alpha).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// An 8-bit unsigned immediate.
    Lit(u8),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Lit(v) => write!(f, "{v}"),
        }
    }
}

/// A decoded instruction.
///
/// Branch displacements are in *instruction words* relative to the updated PC
/// (`PC + 4`), exactly as on the Alpha.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// System call (`sys func`).
    Sys {
        /// Which system function.
        func: SysFunc,
    },
    /// Load or store: `op ra, disp(rb)`.
    Mem {
        /// Operation (load/store and width).
        op: MemOp,
        /// Data register (destination for loads, source for stores).
        ra: Reg,
        /// Base address register.
        rb: Reg,
        /// Signed byte displacement.
        disp: i16,
    },
    /// Load address: `lda ra, disp(rb)` → `ra = rb + disp`.
    ///
    /// With `high` set (`ldah`) the displacement is shifted left 16 bits.
    /// `lda $sp, imm($sp)` is the canonical stack adjustment the SVF watches.
    Lda {
        /// Shift the displacement left by 16 (`ldah`)?
        high: bool,
        /// Destination register.
        ra: Reg,
        /// Base register.
        rb: Reg,
        /// Signed displacement.
        disp: i16,
    },
    /// Unconditional PC-relative branch; `ra` receives the return address.
    Br {
        /// Plain branch or call-hinted branch.
        op: BrOp,
        /// Link register (use `$zero` for a plain goto).
        ra: Reg,
        /// Signed displacement in instructions from `PC + 4`.
        disp: i32,
    },
    /// Conditional PC-relative branch testing `ra` against zero.
    CondBr {
        /// Branch condition.
        op: CondOp,
        /// Register tested against zero.
        ra: Reg,
        /// Signed displacement in instructions from `PC + 4`.
        disp: i32,
    },
    /// Integer operate: `op ra, rb_or_lit, rc`.
    Op {
        /// The ALU operation.
        op: AluOp,
        /// First source register.
        ra: Reg,
        /// Second source (register or 8-bit literal).
        rb: Operand,
        /// Destination register.
        rc: Reg,
    },
    /// Register-indirect jump: `jmp/jsr/ret ra, (rb)`.
    Jmp {
        /// Jump / call / return.
        kind: JmpKind,
        /// Link register receiving `PC + 4`.
        ra: Reg,
        /// Register holding the target address.
        rb: Reg,
    },
}

impl Inst {
    /// The architectural destination register, if the instruction writes one
    /// (writes to `$zero` are reported as `None`).
    #[must_use]
    pub fn dest(&self) -> Option<Reg> {
        let d = match *self {
            Inst::Sys { .. } => return None,
            Inst::Mem { op, ra, .. } => {
                if op.is_load() {
                    ra
                } else {
                    return None;
                }
            }
            Inst::Lda { ra, .. } => ra,
            Inst::Br { ra, .. } | Inst::Jmp { ra, .. } => ra,
            Inst::CondBr { .. } => return None,
            Inst::Op { rc, .. } => rc,
        };
        if d.is_zero() {
            None
        } else {
            Some(d)
        }
    }

    /// The architectural source registers (excluding `$zero`), deduplicated.
    #[must_use]
    pub fn srcs(&self) -> Vec<Reg> {
        self.src_regs().into_iter().flatten().collect()
    }

    /// [`Inst::srcs`] without the allocation: no instruction reads more than
    /// two distinct registers, so the sources come back as a `None`-padded
    /// pair. This is the form the cycle simulator's dispatch hot path uses.
    #[must_use]
    pub fn src_regs(&self) -> [Option<Reg>; 2] {
        let mut out = [None, None];
        let mut push = |r: Reg| {
            if !r.is_zero() && out[0] != Some(r) && out[1] != Some(r) {
                if out[0].is_none() {
                    out[0] = Some(r);
                } else {
                    debug_assert!(out[1].is_none(), "an instruction reads at most two registers");
                    out[1] = Some(r);
                }
            }
        };
        match *self {
            Inst::Sys { func } => {
                if func != SysFunc::Halt {
                    push(Reg::A0);
                }
            }
            Inst::Mem { op, ra, rb, .. } => {
                push(rb);
                if op.is_store() {
                    push(ra);
                }
            }
            Inst::Lda { rb, .. } => push(rb),
            Inst::Br { .. } => {}
            Inst::CondBr { ra, .. } => push(ra),
            Inst::Op { ra, rb, .. } => {
                push(ra);
                if let Operand::Reg(r) = rb {
                    push(r);
                }
            }
            Inst::Jmp { rb, .. } => push(rb),
        }
        out
    }

    /// Whether this is a memory load.
    #[must_use]
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Mem { op, .. } if op.is_load())
    }

    /// Whether this is a memory store.
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::Mem { op, .. } if op.is_store())
    }

    /// Whether this is any memory reference.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        matches!(self, Inst::Mem { .. })
    }

    /// Whether this instruction can redirect control flow.
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(self, Inst::Br { .. } | Inst::CondBr { .. } | Inst::Jmp { .. })
    }

    /// Whether this is a call (for return-address-stack purposes).
    #[must_use]
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::Br { op: BrOp::Bsr, .. } | Inst::Jmp { kind: JmpKind::Jsr, .. })
    }

    /// Whether this is a return.
    #[must_use]
    pub fn is_ret(&self) -> bool {
        matches!(self, Inst::Jmp { kind: JmpKind::Ret, .. })
    }

    /// Whether this memory reference uses `$sp`-relative addressing — the
    /// class of references the SVF front end can *morph* into register moves.
    #[must_use]
    pub fn is_sp_relative_mem(&self) -> bool {
        matches!(self, Inst::Mem { rb, .. } if rb.is_sp())
    }

    /// Whether this instruction writes the stack pointer.
    #[must_use]
    pub fn writes_sp(&self) -> bool {
        self.dest() == Some(Reg::SP)
    }

    /// Whether this is a stack-pointer adjustment by an immediate constant
    /// (`lda $sp, imm($sp)`), the only `$sp` update the SVF decode stage can
    /// track speculatively. Returns the byte delta when so.
    #[must_use]
    pub fn sp_immediate_adjust(&self) -> Option<i64> {
        match *self {
            Inst::Lda { high, ra, rb, disp } if ra.is_sp() && rb.is_sp() => {
                let d = i64::from(disp);
                Some(if high { d << 16 } else { d })
            }
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Sys { func } => match func {
                SysFunc::Halt => write!(f, "halt"),
                SysFunc::PutInt => write!(f, "putint"),
                SysFunc::PutChar => write!(f, "putchar"),
            },
            Inst::Mem { op, ra, rb, disp } => {
                write!(f, "{} {ra}, {disp}({rb})", op.mnemonic())
            }
            Inst::Lda { high, ra, rb, disp } => {
                write!(f, "{} {ra}, {disp}({rb})", if high { "ldah" } else { "lda" })
            }
            Inst::Br { op, ra, disp } => {
                let m = match op {
                    BrOp::Br => "br",
                    BrOp::Bsr => "bsr",
                };
                write!(f, "{m} {ra}, {disp}")
            }
            Inst::CondBr { op, ra, disp } => write!(f, "{} {ra}, {disp}", op.mnemonic()),
            Inst::Op { op, ra, rb, rc } => write!(f, "{} {ra}, {rb}, {rc}", op.mnemonic()),
            Inst::Jmp { kind, ra, rb } => write!(f, "{} {ra}, ({rb})", kind.mnemonic()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_apply_basics() {
        assert_eq!(AluOp::Addq.apply(3, 4), 7);
        assert_eq!(AluOp::Subq.apply(3, 4), (-1i64) as u64);
        assert_eq!(AluOp::Mulq.apply(6, 7), 42);
        assert_eq!(AluOp::Mulq.apply(1 << 40, 1 << 30), 0, "low 64 bits only");
        assert_eq!(AluOp::Divq.apply(7, 2), 3);
        assert_eq!(AluOp::Divq.apply((-7i64) as u64, 2), (-3i64) as u64);
        assert_eq!(AluOp::Divq.apply(7, 0), 0);
        assert_eq!(AluOp::Remq.apply(7, 0), 7);
        assert_eq!(AluOp::Remq.apply((-7i64) as u64, 2), (-1i64) as u64);
        assert_eq!(AluOp::Divq.apply(i64::MIN as u64, (-1i64) as u64), i64::MIN as u64);
    }

    #[test]
    fn alu_shifts_mask_amount() {
        assert_eq!(AluOp::Sll.apply(1, 65), 2);
        assert_eq!(AluOp::Srl.apply(u64::MAX, 63), 1);
        assert_eq!(AluOp::Sra.apply((-8i64) as u64, 2), (-2i64) as u64);
    }

    #[test]
    fn alu_compares() {
        assert_eq!(AluOp::Cmplt.apply((-1i64) as u64, 0), 1);
        assert_eq!(AluOp::Cmpult.apply((-1i64) as u64, 0), 0);
        assert_eq!(AluOp::Cmpeq.apply(5, 5), 1);
        assert_eq!(AluOp::Cmple.apply(5, 5), 1);
        assert_eq!(AluOp::Cmpule.apply(6, 5), 0);
    }

    #[test]
    fn cond_taken() {
        assert!(CondOp::Beq.taken(0));
        assert!(!CondOp::Beq.taken(1));
        assert!(CondOp::Blt.taken((-1i64) as u64));
        assert!(!CondOp::Blt.taken(0));
        assert!(CondOp::Bge.taken(0));
        assert!(CondOp::Bgt.taken(1));
        assert!(CondOp::Ble.taken(0));
        assert!(CondOp::Bne.taken(2));
    }

    #[test]
    fn dest_and_srcs() {
        let i = Inst::Op { op: AluOp::Addq, ra: Reg::A0, rb: Operand::Reg(Reg::A1), rc: Reg::V0 };
        assert_eq!(i.dest(), Some(Reg::V0));
        assert_eq!(i.srcs(), vec![Reg::A0, Reg::A1]);

        let st = Inst::Mem { op: MemOp::Stq, ra: Reg::T0, rb: Reg::SP, disp: 16 };
        assert_eq!(st.dest(), None);
        assert_eq!(st.srcs(), vec![Reg::SP, Reg::T0]);
        assert!(st.is_sp_relative_mem());
        assert!(st.is_store() && !st.is_load());

        let ld = Inst::Mem { op: MemOp::Ldq, ra: Reg::T0, rb: Reg::FP, disp: -8 };
        assert_eq!(ld.dest(), Some(Reg::T0));
        assert_eq!(ld.srcs(), vec![Reg::FP]);
        assert!(!ld.is_sp_relative_mem());
    }

    #[test]
    fn zero_dest_is_discarded() {
        let i = Inst::Op { op: AluOp::Addq, ra: Reg::A0, rb: Operand::Lit(1), rc: Reg::ZERO };
        assert_eq!(i.dest(), None);
        let b = Inst::Br { op: BrOp::Br, ra: Reg::ZERO, disp: -4 };
        assert_eq!(b.dest(), None);
    }

    #[test]
    fn sp_adjust_detection() {
        let grow = Inst::Lda { high: false, ra: Reg::SP, rb: Reg::SP, disp: -64 };
        assert_eq!(grow.sp_immediate_adjust(), Some(-64));
        assert!(grow.writes_sp());

        let other = Inst::Lda { high: false, ra: Reg::SP, rb: Reg::T0, disp: 0 };
        assert_eq!(other.sp_immediate_adjust(), None);
        assert!(other.writes_sp());

        let high = Inst::Lda { high: true, ra: Reg::SP, rb: Reg::SP, disp: 1 };
        assert_eq!(high.sp_immediate_adjust(), Some(65536));
    }

    #[test]
    fn call_ret_classification() {
        assert!(Inst::Br { op: BrOp::Bsr, ra: Reg::RA, disp: 10 }.is_call());
        assert!(!Inst::Br { op: BrOp::Br, ra: Reg::ZERO, disp: 10 }.is_call());
        assert!(Inst::Jmp { kind: JmpKind::Jsr, ra: Reg::RA, rb: Reg::PV }.is_call());
        assert!(Inst::Jmp { kind: JmpKind::Ret, ra: Reg::ZERO, rb: Reg::RA }.is_ret());
    }

    #[test]
    fn display_is_nonempty_and_stable() {
        let i = Inst::Mem { op: MemOp::Ldq, ra: Reg::T0, rb: Reg::SP, disp: 8 };
        assert_eq!(i.to_string(), "ldq $t0, 8($sp)");
        let j = Inst::Jmp { kind: JmpKind::Ret, ra: Reg::ZERO, rb: Reg::RA };
        assert_eq!(j.to_string(), "ret $zero, ($ra)");
    }
}
