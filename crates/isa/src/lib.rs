//! # svf-isa — a 64-bit Alpha-like RISC instruction set
//!
//! This crate defines the instruction set architecture used throughout the
//! Stack Value File (SVF) reproduction: a load/store, 32-register, 64-bit
//! RISC machine closely modelled on the Compaq Alpha, which is the ISA the
//! original HPCA 2001 paper evaluated.
//!
//! The properties the SVF relies on are preserved faithfully:
//!
//! * memory operands use a single `reg ± disp16` addressing mode, so
//!   `$sp`-relative references are recognizable at decode time;
//! * the stack pointer is an ordinary general-purpose register (`r30`) and
//!   is adjusted with ordinary `lda $sp, imm($sp)` instructions;
//! * the natural access granularity is a 64-bit *quad-word*.
//!
//! The crate provides:
//!
//! * [`Reg`] — register names and the Alpha software conventions
//!   (`$sp` = r30, `$fp` = r15, `$ra` = r26, `$zero` = r31);
//! * [`Inst`] — the decoded instruction representation with classification
//!   helpers used by the pipeline models (`is_load`, `writes_sp`, …);
//! * [`encode`]/[`decode`] — the 32-bit binary encoding (round-trip tested);
//! * [`Program`] — a linked binary image (text + data + layout constants).
//!
//! # Example
//!
//! ```
//! use svf_isa::{decode, encode, AluOp, Inst, Operand, Reg};
//!
//! // rc = ra + rb
//! let inst = Inst::Op { op: AluOp::Addq, ra: Reg::A0, rb: Operand::Reg(Reg::A1), rc: Reg::V0 };
//! let word = encode(&inst);
//! assert_eq!(decode(word).unwrap(), inst);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod encoding;
mod inst;
mod layout;
mod program;
mod reg;

pub use encoding::{decode, encode, DecodeError};
pub use inst::{AluOp, BrOp, CondOp, Inst, JmpKind, MemOp, Operand, SysFunc};
pub use layout::{
    MemRegion, DATA_BASE, QW_BYTES, STACK_BASE, STACK_REGION_FLOOR, TEXT_BASE,
};
pub use program::{Program, Symbol};
pub use reg::Reg;
