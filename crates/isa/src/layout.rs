//! Address-space layout and memory-region classification.
//!
//! The layout mirrors the Compaq Alpha/OSF convention the paper describes in
//! Section 2: the stack grows *down* from a system-defined base toward lower
//! addresses; code, read-only and global data sit in a middle range; the heap
//! grows up from just after the global data.
//!
//! ```text
//! 0x4000_0000  STACK_BASE   ── stack grows down from here
//!      ...     (stack region: everything at/above STACK_REGION_FLOOR)
//! 0x2000_0000  STACK_REGION_FLOOR
//!      ...     heap grows up from the end of .data
//! 0x1000_0000  DATA_BASE    ── globals / literal pool
//! 0x0001_0000  TEXT_BASE    ── code
//! ```

/// Bytes per quad-word — the SVF's storage and status-bit granularity.
pub const QW_BYTES: u64 = 8;

/// Base address of the text (code) segment.
pub const TEXT_BASE: u64 = 0x0001_0000;

/// Base address of the global data segment.
pub const DATA_BASE: u64 = 0x1000_0000;

/// Initial stack pointer; the stack occupies addresses just below this and
/// grows toward [`STACK_REGION_FLOOR`].
pub const STACK_BASE: u64 = 0x4000_0000;

/// Any address at or above this is classified as a stack reference.
/// (The stack would have to grow by half a gigabyte to collide with the
/// heap; the workloads never approach this.)
pub const STACK_REGION_FLOOR: u64 = 0x2000_0000;

/// Which memory region an address falls in — the classification behind the
/// paper's Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemRegion {
    /// Code segment.
    Text,
    /// Global (static) data segment, below the heap break captured at link
    /// time.
    Global,
    /// Dynamically allocated memory.
    Heap,
    /// The run-time stack.
    Stack,
}

impl MemRegion {
    /// Classifies an address. `heap_base` is the end of the global data
    /// segment recorded in the [`Program`](crate::Program) image.
    #[must_use]
    pub fn classify(addr: u64, heap_base: u64) -> MemRegion {
        if addr >= STACK_REGION_FLOOR {
            MemRegion::Stack
        } else if addr >= heap_base {
            MemRegion::Heap
        } else if addr >= DATA_BASE {
            MemRegion::Global
        } else {
            MemRegion::Text
        }
    }

    /// Whether the address belongs to the stack region.
    #[must_use]
    pub fn is_stack(self) -> bool {
        self == MemRegion::Stack
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_boundaries() {
        let heap_base = DATA_BASE + 0x4000;
        assert_eq!(MemRegion::classify(TEXT_BASE, heap_base), MemRegion::Text);
        assert_eq!(MemRegion::classify(DATA_BASE, heap_base), MemRegion::Global);
        assert_eq!(MemRegion::classify(heap_base - 1, heap_base), MemRegion::Global);
        assert_eq!(MemRegion::classify(heap_base, heap_base), MemRegion::Heap);
        assert_eq!(MemRegion::classify(STACK_REGION_FLOOR, heap_base), MemRegion::Stack);
        assert_eq!(MemRegion::classify(STACK_BASE - 8, heap_base), MemRegion::Stack);
        assert!(MemRegion::classify(STACK_BASE - 8, heap_base).is_stack());
        assert!(!MemRegion::classify(DATA_BASE, heap_base).is_stack());
    }

    #[test]
    fn layout_ordering() {
        // Evaluated through locals so the checks exercise runtime values
        // (the constants are re-derivable knobs, not invariants of Rust).
        let (t, d, f, s) = (TEXT_BASE, DATA_BASE, STACK_REGION_FLOOR, STACK_BASE);
        assert!(t < d && d < f && f < s);
        assert_eq!(s % QW_BYTES, 0);
    }
}
