//! Property tests: the circular-buffer SVF behaves exactly like an
//! unbounded reference model that tracks per-address state explicitly.
//!
//! The reference model keeps a map from quad-word address to (valid, dirty)
//! for the covered range only. Every observable behaviour — range checks,
//! demand fills, kills, spills — must match.

use std::collections::HashMap;

use proptest::prelude::*;
use svf::{StackValueFile, SvfConfig};

const SP0: u64 = 0x4000_0000;

/// The straightforward reference model.
struct Model {
    cap: u64,
    lo: u64,
    state: HashMap<u64, (bool, bool)>, // addr -> (valid, dirty)
    qw_in: u64,
    qw_out: u64,
}

impl Model {
    fn new(cap: u64) -> Model {
        Model { cap, lo: SP0, state: HashMap::new(), qw_in: 0, qw_out: 0 }
    }

    fn in_range(&self, addr: u64) -> bool {
        addr >= self.lo && addr < self.lo + self.cap
    }

    fn on_sp_update(&mut self, new_sp: u64) {
        if new_sp < self.lo {
            // Growth: spill dirty words leaving through the window top.
            let keep_hi = new_sp + self.cap;
            let mut next = HashMap::new();
            for (&a, &(v, d)) in &self.state {
                if a >= keep_hi {
                    if v && d {
                        self.qw_out += 1;
                    }
                } else {
                    next.insert(a, (v, d));
                }
            }
            self.state = next;
        } else if new_sp > self.lo {
            // Shrink: kill deallocated words.
            self.state.retain(|&a, _| a >= new_sp);
        }
        self.lo = new_sp;
    }

    fn load(&mut self, addr: u64) -> Option<bool> {
        if !self.in_range(addr) {
            return None;
        }
        let e = self.state.entry(addr).or_insert((false, false));
        if e.0 {
            Some(false)
        } else {
            *e = (true, e.1);
            self.qw_in += 1;
            Some(true)
        }
    }

    fn store(&mut self, addr: u64, size: u8) -> Option<bool> {
        if !self.in_range(addr) {
            return None;
        }
        let e = self.state.entry(addr).or_insert((false, false));
        let filled = !e.0 && size < 8;
        if filled {
            self.qw_in += 1;
        }
        *e = (true, true);
        Some(filled)
    }

    fn flush(&mut self) -> u64 {
        let dirty = self.state.values().filter(|&&(v, d)| v && d).count() as u64;
        self.qw_out += dirty;
        self.state.clear();
        dirty * 8
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Adjust SP by this many quad-words (negative = grow).
    Adjust(i64),
    /// Load at TOS + offset quad-words.
    Load(u64),
    /// Store at TOS + offset quad-words, with this access size.
    Store(u64, u8),
    /// Context switch.
    Flush,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (-64i64..64).prop_map(Op::Adjust),
        4 => (0u64..160).prop_map(Op::Load),
        4 => ((0u64..160), prop_oneof![Just(8u8), Just(4), Just(1)])
            .prop_map(|(o, s)| Op::Store(o, s)),
        1 => Just(Op::Flush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn svf_matches_reference_model(ops in proptest::collection::vec(arb_op(), 1..200)) {
        let cap = 1024u64; // 128 entries
        let mut svf = StackValueFile::new(SvfConfig::with_size(cap), SP0);
        let mut model = Model::new(cap);
        let mut sp = SP0;

        for op in ops {
            match op {
                Op::Adjust(dq) => {
                    let new_sp = sp
                        .saturating_add_signed(dq * 8)
                        .clamp(SP0 - 1_000_000, SP0);
                    svf.on_sp_update(sp, new_sp);
                    model.on_sp_update(new_sp);
                    sp = new_sp;
                }
                Op::Load(off_qw) => {
                    let addr = sp + off_qw * 8;
                    let got = svf.load(addr, 8).map(|a| a.filled);
                    let want = model.load(addr);
                    prop_assert_eq!(got, want, "load at TOS+{}qw", off_qw);
                }
                Op::Store(off_qw, size) => {
                    let addr = sp + off_qw * 8;
                    let got = svf.store(addr, size).map(|a| a.filled);
                    let want = model.store(addr, size);
                    prop_assert_eq!(got, want, "store at TOS+{}qw size {}", off_qw, size);
                }
                Op::Flush => {
                    prop_assert_eq!(svf.context_switch_flush(), model.flush());
                }
            }
            prop_assert_eq!(svf.range().0, model.lo);
            prop_assert_eq!(svf.stats().traffic.qw_in, model.qw_in, "fill traffic diverged");
            prop_assert_eq!(svf.stats().traffic.qw_out, model.qw_out, "spill traffic diverged");
            prop_assert_eq!(svf.valid_count() as u64,
                model.state.values().filter(|&&(v, _)| v).count() as u64);
            prop_assert_eq!(svf.dirty_count() as u64,
                model.state.values().filter(|&&(v, d)| v && d).count() as u64);
        }
    }

    #[test]
    fn traffic_is_zero_while_shallow(depths in proptest::collection::vec(1u64..100, 1..50)) {
        // Any sequence of call/return pairs whose frames fit inside the SVF
        // generates no memory traffic at all (the paper's headline claim).
        let mut svf = StackValueFile::new(SvfConfig::kb8(), SP0);
        let sp = SP0;
        for frame_qw in depths {
            let new_sp = sp - frame_qw * 8;
            if SP0 - new_sp >= 8192 {
                continue; // would exceed capacity; skip
            }
            svf.on_sp_update(sp, new_sp);
            for i in 0..frame_qw {
                svf.store(new_sp + i * 8, 8);
                svf.load(new_sp + i * 8, 8);
            }
            svf.on_sp_update(new_sp, sp);
        }
        prop_assert_eq!(svf.stats().traffic.qw_in, 0);
        prop_assert_eq!(svf.stats().traffic.qw_out, 0);
    }
}
