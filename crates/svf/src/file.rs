//! The stack value file structure.

use svf_mem::TrafficStats;

/// SVF configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SvfConfig {
    /// Capacity in bytes (power of two, multiple of 8). The paper's main
    /// configuration is 8 KB = 1024 entries × 8 bytes.
    pub capacity_bytes: u64,
}

impl SvfConfig {
    /// The paper's 8 KB SVF (1024 quad-word entries).
    #[must_use]
    pub fn kb8() -> SvfConfig {
        SvfConfig { capacity_bytes: 8 << 10 }
    }

    /// A sized variant (2/4/8 KB in Table 3).
    #[must_use]
    pub fn with_size(capacity_bytes: u64) -> SvfConfig {
        SvfConfig { capacity_bytes }
    }
}

/// Statistics specific to the SVF, plus standard traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SvfStats {
    /// Standard access/traffic counters. `qw_in`/`qw_out` is the SVF ↔ L1
    /// traffic of Table 3.
    pub traffic: TrafficStats,
    /// Quad-words invalidated by stack growth (allocations that cost no
    /// read traffic — a stack cache would have filled these).
    pub alloc_kills: u64,
    /// Dirty quad-words killed by stack shrink (writebacks a stack cache
    /// could not avoid).
    pub dealloc_dirty_kills: u64,
    /// Demand fills of individual quad-words (`qw_in` increments from
    /// loads to invalid entries).
    pub demand_fills: u64,
    /// Dirty quad-words spilled because the window slid over live data
    /// (stack depth exceeded SVF capacity).
    pub window_spills: u64,
}

impl SvfStats {
    /// Adds `other`'s counters into `self` (sampled simulation sums the
    /// per-interval statistics before extrapolating).
    pub fn accumulate(&mut self, other: &SvfStats) {
        self.traffic.accumulate(&other.traffic);
        self.alloc_kills += other.alloc_kills;
        self.dealloc_dirty_kills += other.dealloc_dirty_kills;
        self.demand_fills += other.demand_fills;
        self.window_spills += other.window_spills;
    }

    /// Counter-wise difference against an `earlier` snapshot of the same
    /// monotone counters (saturating) — scopes statistics to a measurement
    /// window that starts mid-run.
    #[must_use]
    pub fn delta(&self, earlier: &SvfStats) -> SvfStats {
        SvfStats {
            traffic: self.traffic.delta(&earlier.traffic),
            alloc_kills: self.alloc_kills.saturating_sub(earlier.alloc_kills),
            dealloc_dirty_kills: self.dealloc_dirty_kills.saturating_sub(earlier.dealloc_dirty_kills),
            demand_fills: self.demand_fills.saturating_sub(earlier.demand_fills),
            window_spills: self.window_spills.saturating_sub(earlier.window_spills),
        }
    }

    /// Every counter scaled by `num / den` with round-to-nearest (see
    /// [`svf_mem::scale_counter`]) — the extrapolation step of sampled
    /// simulation.
    #[must_use]
    pub fn scaled(&self, num: u64, den: u64) -> SvfStats {
        SvfStats {
            traffic: self.traffic.scaled(num, den),
            alloc_kills: svf_mem::scale_counter(self.alloc_kills, num, den),
            dealloc_dirty_kills: svf_mem::scale_counter(self.dealloc_dirty_kills, num, den),
            demand_fills: svf_mem::scale_counter(self.demand_fills, num, den),
            window_spills: svf_mem::scale_counter(self.window_spills, num, den),
        }
    }
}

/// Outcome of one SVF data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SvfAccess {
    /// Whether the entry had to be demand-filled from the L1 first.
    pub filled: bool,
}

/// Traffic consequences of a stack-pointer adjustment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpAdjustEffect {
    /// Quad-words written back to the L1 (live data pushed out of the
    /// window by deep stack growth).
    pub spilled_qw: u64,
    /// Quad-words whose dirty data was discarded as semantically dead.
    pub killed_qw: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    valid: bool,
    dirty: bool,
}

/// The stack value file. See the [crate docs](crate) for the big picture.
///
/// The structure tracks *state*, not data values (values flow through the
/// rename network in the pipeline model; the functional emulator owns
/// memory contents).
#[derive(Debug, Clone)]
pub struct StackValueFile {
    entries: Vec<Entry>,
    /// Lowest address covered, always the quad-word containing the TOS.
    range_lo: u64,
    capacity: u64,
    stats: SvfStats,
}

impl StackValueFile {
    /// Builds an SVF whose range starts at the initial stack pointer.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a power-of-two multiple of 8 bytes, or
    /// if `initial_sp` is not 8-byte aligned.
    #[must_use]
    pub fn new(cfg: SvfConfig, initial_sp: u64) -> StackValueFile {
        let n = cfg.capacity_bytes / 8;
        assert!(n > 0 && n.is_power_of_two(), "SVF capacity must be a power-of-two multiple of 8");
        assert_eq!(initial_sp % 8, 0, "stack pointer must be 8-byte aligned");
        StackValueFile {
            entries: vec![Entry::default(); n as usize],
            range_lo: initial_sp,
            capacity: cfg.capacity_bytes,
            stats: SvfStats::default(),
        }
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    /// Number of quad-word entries.
    #[must_use]
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// The covered address range `[lo, hi)`.
    #[must_use]
    pub fn range(&self) -> (u64, u64) {
        (self.range_lo, self.range_lo + self.capacity)
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> SvfStats {
        self.stats
    }

    /// Zeroes the statistics counters while keeping entry state (valid and
    /// dirty bits, window position) warm — sampled simulation warms the SVF
    /// functionally and then measures only the detailed interval.
    pub fn reset_stats(&mut self) {
        self.stats = SvfStats::default();
    }

    /// Whether `addr` falls inside the covered range — the bounds check the
    /// decode stage (for `$sp`-relative references) and the execute stage
    /// (for everything else) perform.
    #[must_use]
    pub fn in_range(&self, addr: u64) -> bool {
        addr >= self.range_lo && addr < self.range_lo + self.capacity
    }

    fn index(&self, addr: u64) -> usize {
        ((addr / 8) as usize) & (self.entries.len() - 1)
    }

    /// Clears entries for every quad-word address in `[lo, hi)`, returning
    /// `(killed_dirty, killed_any)` counts. Caps the walk at one full
    /// rotation of the circular buffer.
    fn clear_span(&mut self, lo: u64, hi: u64) -> (u64, u64) {
        let span = hi.saturating_sub(lo).min(self.capacity);
        let mut dirty = 0;
        let mut any = 0;
        let mut addr = lo;
        while addr < lo + span {
            let idx = self.index(addr);
            let e = &mut self.entries[idx];
            if e.valid {
                any += 1;
                if e.dirty {
                    dirty += 1;
                }
            }
            *e = Entry::default();
            addr += 8;
        }
        (dirty, any)
    }

    /// Applies a committed stack-pointer change, sliding the covered range
    /// and performing the paper's semantic state updates:
    ///
    /// * **growth** (`new_sp < old_sp`): live quad-words that fall out of
    ///   the top of the window are spilled to the L1 (`qw_out`); the newly
    ///   allocated quad-words are marked invalid with **no** fill;
    /// * **shrink** (`new_sp > old_sp`): the deallocated quad-words are
    ///   killed — dirty data is discarded, never written back.
    pub fn on_sp_update(&mut self, old_sp: u64, new_sp: u64) -> SpAdjustEffect {
        debug_assert_eq!(new_sp % 8, 0, "unaligned stack pointer {new_sp:#x}");
        let mut effect = SpAdjustEffect::default();
        let old_lo = self.range_lo;
        let _ = old_sp; // range_lo already tracks the committed TOS
        if new_sp < old_lo {
            // Growth. Entries being re-mapped from the old window top
            // [new_sp + cap, old_lo + cap) to [new_sp, old_lo) may hold
            // live data: spill dirty ones.
            let reuse_lo = new_sp + self.capacity;
            let reuse_hi = old_lo + self.capacity;
            let (dirty, _any) = self.clear_span(reuse_lo.min(reuse_hi), reuse_hi);
            self.stats.traffic.qw_out += dirty;
            self.stats.window_spills += dirty;
            self.stats.traffic.writebacks += dirty;
            effect.spilled_qw = dirty;
            // The newly covered low addresses are fresh allocations:
            // guarantee invalid (they share entries with the span just
            // cleared, so nothing further to do except accounting).
            let alloc_qw = (old_lo - new_sp).min(self.capacity) / 8;
            self.stats.alloc_kills += alloc_qw;
            self.range_lo = new_sp;
        } else if new_sp > old_lo {
            // Shrink. [old_lo, new_sp) is deallocated: kill it.
            let (dirty, any) = self.clear_span(old_lo, new_sp.min(old_lo + self.capacity));
            self.stats.dealloc_dirty_kills += dirty;
            effect.killed_qw = any;
            self.range_lo = new_sp;
        }
        effect
    }

    /// Presents a load. Returns `None` when the address is out of range
    /// (the reference must go to the data cache); otherwise reports whether
    /// a demand fill from the L1 was needed.
    pub fn load(&mut self, addr: u64, _size: u8) -> Option<SvfAccess> {
        if !self.in_range(addr) {
            return None;
        }
        self.stats.traffic.accesses += 1;
        let idx = self.index(addr);
        let e = &mut self.entries[idx];
        if e.valid {
            self.stats.traffic.hits += 1;
            Some(SvfAccess { filled: false })
        } else {
            // Like a cache, locations are read only when needed (§3.3).
            e.valid = true;
            self.stats.traffic.misses += 1;
            self.stats.traffic.qw_in += 1;
            self.stats.demand_fills += 1;
            Some(SvfAccess { filled: true })
        }
    }

    /// Presents a store. Full quad-word stores validate the entry with no
    /// fill; narrower stores to an invalid entry must first read the
    /// quad-word to merge (64 bits is the status-bit granularity, §3.3).
    pub fn store(&mut self, addr: u64, size: u8) -> Option<SvfAccess> {
        if !self.in_range(addr) {
            return None;
        }
        self.stats.traffic.accesses += 1;
        let idx = self.index(addr);
        let e = &mut self.entries[idx];
        let mut filled = false;
        if !e.valid && size < 8 {
            self.stats.traffic.qw_in += 1;
            self.stats.demand_fills += 1;
            filled = true;
        }
        if e.valid || filled {
            self.stats.traffic.hits += 1;
        } else {
            self.stats.traffic.misses += 1;
        }
        e.valid = true;
        e.dirty = true;
        Some(SvfAccess { filled })
    }

    /// Context switch: write back valid **and** dirty quad-words (8-byte
    /// granularity — the SVF's fine-grained advantage in Table 4) and
    /// invalidate everything. Returns bytes written back.
    pub fn context_switch_flush(&mut self) -> u64 {
        let mut dirty = 0u64;
        for e in &mut self.entries {
            if e.valid && e.dirty {
                dirty += 1;
            }
            *e = Entry::default();
        }
        self.stats.traffic.qw_out += dirty;
        self.stats.traffic.writebacks += dirty;
        dirty * 8
    }

    /// Number of currently valid entries (diagnostics).
    #[must_use]
    pub fn valid_count(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Number of currently dirty entries (diagnostics).
    #[must_use]
    pub fn dirty_count(&self) -> usize {
        self.entries.iter().filter(|e| e.valid && e.dirty).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SP0: u64 = 0x4000_0000;

    fn svf(cap: u64) -> StackValueFile {
        StackValueFile::new(SvfConfig::with_size(cap), SP0)
    }

    #[test]
    fn range_follows_sp() {
        let mut s = svf(1024);
        assert_eq!(s.range(), (SP0, SP0 + 1024));
        s.on_sp_update(SP0, SP0 - 256);
        assert_eq!(s.range(), (SP0 - 256, SP0 - 256 + 1024));
        assert!(s.in_range(SP0 - 256));
        assert!(s.in_range(SP0 + 768 - 8));
        assert!(!s.in_range(SP0 + 768));
        assert!(!s.in_range(SP0 - 264));
    }

    #[test]
    fn allocation_is_free() {
        let mut s = svf(1024);
        let eff = s.on_sp_update(SP0, SP0 - 512);
        assert_eq!(eff.spilled_qw, 0);
        assert_eq!(s.stats().traffic.qw_in, 0);
        assert_eq!(s.stats().alloc_kills, 64);
    }

    #[test]
    fn first_touch_store_needs_no_fill() {
        let mut s = svf(1024);
        s.on_sp_update(SP0, SP0 - 64);
        let acc = s.store(SP0 - 64, 8).unwrap();
        assert!(!acc.filled);
        assert_eq!(s.stats().traffic.qw_in, 0);
        assert_eq!(s.dirty_count(), 1);
    }

    #[test]
    fn narrow_store_to_invalid_entry_fills() {
        let mut s = svf(1024);
        s.on_sp_update(SP0, SP0 - 64);
        let acc = s.store(SP0 - 64, 4).unwrap();
        assert!(acc.filled, "read-merge for sub-quad store");
        assert_eq!(s.stats().traffic.qw_in, 1);
        // A second narrow store hits the now-valid entry.
        let acc = s.store(SP0 - 64, 1).unwrap();
        assert!(!acc.filled);
    }

    #[test]
    fn load_after_store_hits() {
        let mut s = svf(1024);
        s.on_sp_update(SP0, SP0 - 64);
        s.store(SP0 - 32, 8);
        let acc = s.load(SP0 - 32, 8).unwrap();
        assert!(!acc.filled);
    }

    #[test]
    fn load_to_invalid_demand_fills_once() {
        let mut s = svf(1024);
        s.on_sp_update(SP0, SP0 - 64);
        assert!(s.load(SP0 - 16, 8).unwrap().filled);
        assert!(!s.load(SP0 - 16, 8).unwrap().filled);
        assert_eq!(s.stats().demand_fills, 1);
    }

    #[test]
    fn deallocation_kills_dirty_data() {
        let mut s = svf(1024);
        s.on_sp_update(SP0, SP0 - 128);
        for i in 0..16 {
            s.store(SP0 - 128 + 8 * i, 8);
        }
        assert_eq!(s.dirty_count(), 16);
        let eff = s.on_sp_update(SP0 - 128, SP0);
        assert_eq!(eff.killed_qw, 16);
        assert_eq!(s.stats().traffic.qw_out, 0, "dead data never written back");
        assert_eq!(s.stats().dealloc_dirty_kills, 16);
        assert_eq!(s.dirty_count(), 0);
    }

    #[test]
    fn reallocation_after_shrink_is_invalid() {
        let mut s = svf(1024);
        s.on_sp_update(SP0, SP0 - 64);
        s.store(SP0 - 64, 8);
        s.on_sp_update(SP0 - 64, SP0); // return: kill
        s.on_sp_update(SP0, SP0 - 64); // call again
        // The old value is dead; a load must fill from L1.
        assert!(s.load(SP0 - 64, 8).unwrap().filled);
    }

    #[test]
    fn deep_growth_spills_live_window_top() {
        // Capacity 16 QW = 128 bytes.
        let mut s = svf(128);
        s.on_sp_update(SP0, SP0 - 128); // fill the whole window
        for i in 0..16 {
            s.store(SP0 - 128 + 8 * i, 8);
        }
        // Grow 64 bytes deeper: the top 8 QW of the window hold live dirty
        // data and must spill to the L1.
        let eff = s.on_sp_update(SP0 - 128, SP0 - 192);
        assert_eq!(eff.spilled_qw, 8);
        assert_eq!(s.stats().traffic.qw_out, 8);
        assert_eq!(s.stats().window_spills, 8);
        // The spilled addresses are now out of range.
        assert!(!s.in_range(SP0 - 64));
        assert!(s.in_range(SP0 - 192));
    }

    #[test]
    fn growth_beyond_capacity_resets_cleanly() {
        let mut s = svf(128);
        s.on_sp_update(SP0, SP0 - 64);
        for i in 0..8 {
            s.store(SP0 - 64 + 8 * i, 8);
        }
        // Jump far deeper than the capacity in one adjustment.
        let eff = s.on_sp_update(SP0 - 64, SP0 - 4096);
        assert_eq!(eff.spilled_qw, 8, "all live dirty data spilled");
        assert_eq!(s.range(), (SP0 - 4096, SP0 - 4096 + 128));
        assert_eq!(s.valid_count(), 0);
    }

    #[test]
    fn shrink_beyond_capacity_kills_everything() {
        let mut s = svf(128);
        s.on_sp_update(SP0, SP0 - 4096);
        for i in 0..16 {
            s.store(SP0 - 4096 + 8 * i, 8);
        }
        s.on_sp_update(SP0 - 4096, SP0);
        assert_eq!(s.stats().traffic.qw_out, 0);
        assert_eq!(s.valid_count(), 0);
        assert_eq!(s.range(), (SP0, SP0 + 128));
    }

    #[test]
    fn out_of_range_accesses_are_rejected() {
        let mut s = svf(128);
        s.on_sp_update(SP0, SP0 - 64);
        assert!(s.load(SP0 + 128, 8).is_none());
        assert!(s.store(SP0 - 4096, 8).is_none());
        assert_eq!(s.stats().traffic.accesses, 0);
    }

    #[test]
    fn context_switch_flush_is_word_granular() {
        let mut s = svf(1024);
        s.on_sp_update(SP0, SP0 - 256);
        for i in 0..8 {
            s.store(SP0 - 256 + 8 * i, 8);
        }
        s.load(SP0 - 64, 8); // valid but clean
        let bytes = s.context_switch_flush();
        assert_eq!(bytes, 64, "8 dirty quad-words, 8 bytes each");
        assert_eq!(s.valid_count(), 0);
        // After the flush, reloads demand-fill.
        assert!(s.load(SP0 - 256, 8).unwrap().filled);
    }

    #[test]
    fn steady_state_call_return_has_zero_traffic() {
        let mut s = svf(8192);
        let mut sp = SP0;
        // Simulate 1000 call/return pairs of a 256-byte frame at shallow
        // depth: the SVF should generate no memory traffic at all.
        for _ in 0..1000 {
            let new = sp - 256;
            s.on_sp_update(sp, new);
            sp = new;
            for i in 0..32 {
                s.store(sp + 8 * i, 8);
                s.load(sp + 8 * i, 8);
            }
            let back = sp + 256;
            s.on_sp_update(sp, back);
            sp = back;
        }
        let t = s.stats().traffic;
        assert_eq!(t.qw_in, 0);
        assert_eq!(t.qw_out, 0);
        assert_eq!(s.stats().dealloc_dirty_kills, 32_000);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn bad_capacity_panics() {
        let _ = StackValueFile::new(SvfConfig::with_size(100), SP0);
    }
}
