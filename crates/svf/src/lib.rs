//! # svf — the Stack Value File
//!
//! The paper's primary contribution (Lee, Smelyanskiy, Newburn, Tyson:
//! *Stack Value File: Custom Microarchitecture for the Stack*, HPCA 2001):
//! a non-architected register file that holds the memory words nearest the
//! top of stack, replacing the L1 data cache for stack references.
//!
//! This crate implements the SVF **storage structure and its policies**,
//! independent of any pipeline:
//!
//! * a circular buffer of 64-bit entries indexed by the low-order bits of
//!   the quad-word address — no tags, no associative lookup (§3);
//! * a contiguous address range `[TOS, TOS + capacity)` tracked against the
//!   stack pointer (§2: the working set is a single contiguous region);
//! * per-entry **valid** and **dirty** bits at quad-word granularity (§3.3);
//! * the two semantic optimizations that distinguish it from a stack cache
//!   (§5.3.2):
//!   1. *allocations* (stack growth) mark entries invalid — newly allocated
//!      memory is by definition uninitialized, so nothing is read in;
//!   2. *deallocations* (stack shrink) **kill** entries — deallocated data
//!      is semantically dead, so dirty words are dropped, never written
//!      back.
//!
//! Data movement is to/from the **L1 data cache** (fills on demand, spills
//! when the window slides over live data), counted in quad-words exactly as
//! in the paper's Table 3. [`StackValueFile::context_switch_flush`]
//! implements the Table 4 experiment: only valid **and** dirty quad-words
//! are written back, at 8-byte granularity, versus whole lines for a cache.
//!
//! The pipeline integration (morphing, renaming, squashes) lives in
//! `svf-cpu`; the pure structure lives here so its invariants can be tested
//! and benchmarked in isolation.
//!
//! # Example
//!
//! ```
//! use svf::{StackValueFile, SvfConfig};
//!
//! let sp0 = 0x4000_0000;
//! let mut svf = StackValueFile::new(SvfConfig::kb8(), sp0);
//!
//! // A function prologue grows the stack; allocation costs no traffic.
//! svf.on_sp_update(sp0, sp0 - 64);
//! assert!(svf.in_range(sp0 - 64));
//!
//! // First touch is a store (spilling $ra): no fill needed.
//! svf.store(sp0 - 64, 8);
//! assert_eq!(svf.stats().traffic.qw_in, 0);
//!
//! // The epilogue shrinks the stack: the dirty word is killed, not
//! // written back.
//! svf.on_sp_update(sp0 - 64, sp0);
//! assert_eq!(svf.stats().traffic.qw_out, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod file;

pub use file::{SpAdjustEffect, StackValueFile, SvfAccess, SvfConfig, SvfStats};
